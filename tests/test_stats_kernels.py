"""The `repro.stats` package: kernels, keyed RNG, cells and tables.

Property tests (hypothesis) pin the two load-bearing procedures against
independent references: the Mann-Whitney exact p-value against a
brute-force re-derivation from the definition, and the
percentile-bootstrap interval's empirical coverage against its nominal
level.  Everything else is deterministic by construction (the resample
streams are keyed, never drawn from global state), which the tests
assert directly: same key, same interval — byte for byte.
"""

from __future__ import annotations

import math
import pickle
from itertools import combinations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.stats.kernels import (
    MAX_EXACT_SPLITS,
    a12,
    bootstrap_ci,
    mann_whitney_u,
    mean,
    median,
    paired_permutation_test,
    percentile,
)
from repro.stats.rng import SplitMix64, seed_from
from repro.stats.tables import ALPHA, Cell, Table, aggregate


class TestRng:
    def test_seed_from_is_stable_and_sensitive(self):
        assert seed_from("a", 1) == seed_from("a", 1)
        assert seed_from("a", 1) != seed_from("a", 2)
        assert seed_from("a", 1) != seed_from("a1")  # separator matters

    def test_splitmix_streams_are_reproducible(self):
        a = SplitMix64(seed_from("stream", 7))
        b = SplitMix64(seed_from("stream", 7))
        assert [a.next_u64() for _ in range(20)] \
            == [b.next_u64() for _ in range(20)]

    @given(st.integers(min_value=0, max_value=2**64 - 1))
    @settings(max_examples=30, deadline=None)
    def test_random_in_unit_interval(self, seed):
        rng = SplitMix64(seed)
        for _ in range(50):
            assert 0.0 <= rng.random() < 1.0

    @given(st.integers(min_value=0, max_value=2**64 - 1),
           st.integers(min_value=1, max_value=1000))
    @settings(max_examples=30, deadline=None)
    def test_randrange_bounds(self, seed, n):
        rng = SplitMix64(seed)
        for _ in range(20):
            assert 0 <= rng.randrange(n) < n


class TestDescriptive:
    def test_mean_median(self):
        assert mean([1.0, 3.0]) == 2.0
        assert median([3.0, 1.0, 2.0]) == 2.0
        assert median([4.0, 1.0, 2.0, 3.0]) == 2.5

    def test_percentile_interpolates(self):
        values = [0.0, 10.0]
        assert percentile(values, 0) == 0.0
        assert percentile(values, 50) == 5.0
        assert percentile(values, 100) == 10.0
        with pytest.raises(ValueError):
            percentile([], 50)
        with pytest.raises(ValueError):
            percentile([1.0], 101)


class TestBootstrap:
    def test_single_sample_degenerates_to_point(self):
        assert bootstrap_ci([4.2], key="k") == (4.2, 4.2)

    def test_same_key_same_interval(self):
        samples = [1.0, 2.0, 4.0, 8.0, 9.0]
        assert bootstrap_ci(samples, key="x") == bootstrap_ci(samples,
                                                              key="x")
        assert bootstrap_ci(samples, key="x") != bootstrap_ci(samples,
                                                              key="y")

    @given(st.lists(st.floats(min_value=-100, max_value=100,
                              allow_nan=False),
                    min_size=2, max_size=8),
           st.integers(min_value=0, max_value=10**6))
    @settings(max_examples=25, deadline=None)
    def test_interval_bounded_by_sample_range(self, samples, salt):
        lo, hi = bootstrap_ci(samples, key=str(salt), resamples=200)
        assert min(samples) - 1e-9 <= lo <= hi <= max(samples) + 1e-9

    def test_coverage_near_nominal(self):
        # Empirical coverage of the 95% interval over deterministic
        # uniform(0, 1) draws (true mean 0.5).  The percentile bootstrap
        # undercovers slightly at n=8; the band pins it from drifting.
        trials, n, covered = 120, 8, 0
        for trial in range(trials):
            rng = SplitMix64(seed_from("coverage-test", trial))
            samples = [rng.random() for _ in range(n)]
            lo, hi = bootstrap_ci(samples, key=f"cov{trial}",
                                  resamples=400)
            covered += lo <= 0.5 <= hi
        assert 0.82 <= covered / trials <= 1.0


def _brute_force_mann_whitney(a, b):
    """Two-sided exact Mann-Whitney p, re-derived from the definition:
    enumerate every relabelling of the pooled values and count the tail
    mass of |U - nm/2|, with ties worth half a win."""
    def u_of(xs, ys):
        return sum(1.0 if x > y else 0.5 if x == y else 0.0
                   for x in xs for y in ys)

    pooled = list(a) + list(b)
    n = len(a)
    mu = len(a) * len(b) / 2.0
    observed = u_of(a, b)
    extreme = total = 0
    for chosen in combinations(range(len(pooled)), n):
        rest = [pooled[i] for i in range(len(pooled)) if i not in chosen]
        split_u = u_of([pooled[i] for i in chosen], rest)
        total += 1
        if abs(split_u - mu) >= abs(observed - mu) - 1e-12:
            extreme += 1
    return observed, extreme / total


class TestMannWhitney:
    @given(st.lists(st.integers(min_value=0, max_value=3),
                    min_size=1, max_size=5),
           st.lists(st.integers(min_value=0, max_value=3),
                    min_size=1, max_size=5))
    @settings(max_examples=60, deadline=None)
    def test_matches_brute_force_reference(self, a, b):
        u, p = mann_whitney_u(a, b)
        ref_u, ref_p = _brute_force_mann_whitney(a, b)
        assert u == pytest.approx(ref_u)
        assert p == pytest.approx(ref_p)

    @given(st.lists(st.integers(min_value=0, max_value=5),
                    min_size=2, max_size=5),
           st.lists(st.integers(min_value=0, max_value=5),
                    min_size=2, max_size=5))
    @settings(max_examples=40, deadline=None)
    def test_two_sided_symmetry(self, a, b):
        assert mann_whitney_u(a, b)[1] \
            == pytest.approx(mann_whitney_u(b, a)[1])

    def test_separated_five_vs_five_is_significant(self):
        # The report default (5 replicate seeds per side): full
        # separation reaches p = 2/252, comfortably below ALPHA.
        a = [1.0, 1.1, 1.2, 1.3, 1.4]
        b = [9.0, 9.1, 9.2, 9.3, 9.4]
        _, p = mann_whitney_u(a, b)
        assert p == pytest.approx(2 / math.comb(10, 5))
        assert p < ALPHA

    def test_three_seeds_can_never_mark(self):
        # C(6, 3) = 20 splits: the smallest exact two-sided p is 2/20 =
        # 0.1 > ALPHA.  Significance markers need >= 4 seeds per side.
        _, p = mann_whitney_u([1.0, 2.0, 3.0], [9.0, 10.0, 11.0])
        assert p == pytest.approx(0.1)
        assert p > ALPHA

    def test_identical_samples_not_significant(self):
        _, p = mann_whitney_u([2.0, 2.0, 2.0], [2.0, 2.0, 2.0])
        assert p == 1.0

    def test_normal_approximation_path(self):
        a = [float(i) for i in range(40)]
        b = [float(i) + 30.0 for i in range(40)]
        assert math.comb(80, 40) > MAX_EXACT_SPLITS
        _, p_far = mann_whitney_u(a, b)
        _, p_same = mann_whitney_u(a, list(a))
        assert p_far < 1e-6
        assert p_same == 1.0

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            mann_whitney_u([], [1.0])


class TestPairedPermutation:
    def test_identical_pairs_give_one(self):
        assert paired_permutation_test([1.0, 2.0], [1.0, 2.0]) == 1.0

    def test_constant_shift_exact_tail(self):
        # Every per-pair difference is -5: only the two all-same-sign
        # flip assignments reach |mean diff| = 5, so p = 2 / 2^n.
        a = [float(i) for i in range(10)]
        b = [x + 5.0 for x in a]
        assert paired_permutation_test(a, b) \
            == pytest.approx(2 / 2**10)

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            paired_permutation_test([1.0], [1.0, 2.0])

    def test_monte_carlo_path_is_keyed(self):
        a = [float(i) % 7 for i in range(20)]  # > MAX_EXACT_FLIPS pairs
        b = [x + (0.5 if i % 3 else -0.2) for i, x in enumerate(a)]
        p1 = paired_permutation_test(a, b, key="k", rounds=500)
        p2 = paired_permutation_test(a, b, key="k", rounds=500)
        assert p1 == p2


class TestA12:
    def test_effect_sizes(self):
        assert a12([2.0, 2.0], [1.0, 1.0]) == 1.0
        assert a12([1.0, 1.0], [2.0, 2.0]) == 0.0
        assert a12([1.0, 2.0], [1.0, 2.0]) == 0.5


class TestCell:
    def test_single_sample_renders_like_a_float(self):
        cell = Cell(41.333333)
        assert cell.render() == f"{41.333333:.2f}"
        assert cell.samples == (41.333333,)
        assert cell.ci is None and cell.half_width == 0.0

    def test_multi_sample_renders_interval_and_marker(self):
        cell = Cell(10.0, samples=(9.0, 10.0, 11.0), ci=(9.4, 10.6),
                    significant=True, p_value=0.008)
        assert cell.render() == "10.00 ±0.60*"

    def test_is_a_float_for_numeric_consumers(self):
        cell = Cell(3.0, samples=(2.0, 4.0))
        assert cell + 1 == 4.0
        assert sorted([Cell(2.0), Cell(1.0)]) == [1.0, 2.0]

    def test_pickle_roundtrip_keeps_evidence(self):
        cell = Cell(5.0, samples=(4.0, 6.0), ci=(4.2, 5.8),
                    significant=True, p_value=0.01)
        clone = pickle.loads(pickle.dumps(cell))
        assert isinstance(clone, Cell)
        assert (clone.samples, clone.ci, clone.significant,
                clone.p_value) == (cell.samples, cell.ci,
                                   cell.significant, cell.p_value)


class TestAggregate:
    def test_single_sample_has_no_interval(self):
        cell = aggregate([7.5], key="k")
        assert float(cell) == 7.5 and cell.ci is None
        assert not cell.significant and cell.p_value is None

    def test_replicated_vs_separated_baseline_marks(self):
        cell = aggregate([1.0, 1.1, 1.2, 1.3, 1.4], key="k",
                         baseline=[9.0, 9.1, 9.2, 9.3, 9.4])
        assert cell.ci is not None
        assert cell.significant and cell.p_value < ALPHA

    def test_same_key_same_cell(self):
        samples = [1.0, 3.0, 5.0]
        assert aggregate(samples, key="k").ci \
            == aggregate(samples, key="k").ci

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            aggregate([], key="k")


class TestTablePayload:
    def _table(self) -> Table:
        table = Table(title="T", columns=["name", "value", "plain"],
                      notes="n", baseline="value")
        table.add_row(name="a",
                      value=aggregate([1.0, 2.0, 3.0], key="a"),
                      plain=7)
        table.add_row(name="b", value=aggregate([4.0], key="b"),
                      plain=1.25)
        return table

    def test_roundtrip_is_render_identical(self):
        table = self._table()
        clone = Table.from_payload(table.payload())
        assert clone.render() == table.render()
        assert clone.baseline == "value"
        cell = clone.rows[0]["value"]
        assert isinstance(cell, Cell)
        assert cell.samples == (1.0, 2.0, 3.0)
        assert clone.rows[1]["plain"] == 1.25

    def test_payload_is_json_safe(self):
        import json

        json.dumps(self._table().payload())
