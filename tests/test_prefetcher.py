"""Unit tests for the ASAP prefetch engine."""

import pytest

from repro.core.config import AsapConfig, BASELINE, FULL_2D, P1, P1_P2
from repro.core.prefetcher import AsapPrefetcher
from repro.core.range_registers import RangeRegisterFile, VmaDescriptor
from repro.mem.hierarchy import CacheHierarchy
from repro.pagetable.constants import level_shift

VMA_START = 0x5555_0000_0000
VMA_SIZE = 1 << 30
PL1_BASE = 0x10_0000_0000
PL2_BASE = 0x20_0000_0000


def make_prefetcher(levels=(1, 2), hole_checker=None, require_mshr=True):
    hierarchy = CacheHierarchy()
    rrf = RangeRegisterFile()
    rrf.load([
        VmaDescriptor(
            start=VMA_START,
            end=VMA_START + VMA_SIZE,
            level_bases=tuple((lvl, base) for lvl, base in
                              ((1, PL1_BASE), (2, PL2_BASE))
                              if lvl in levels),
        )
    ])
    prefetcher = AsapPrefetcher(hierarchy, rrf, levels=levels,
                                require_mshr=require_mshr,
                                hole_checker=hole_checker)
    return prefetcher, hierarchy


def test_prefetches_target_computed_lines():
    prefetcher, hierarchy = make_prefetcher()
    va = VMA_START + 0x1234_5000
    completions = prefetcher.on_tlb_miss(va, now=0)
    assert set(completions) == {1, 2}
    expected_pl1 = (PL1_BASE + (va >> level_shift(1)) * 8) >> 6
    expected_pl2 = (PL2_BASE + (va >> level_shift(2)) * 8) >> 6
    assert hierarchy.l1.contains(expected_pl1)
    assert hierarchy.l1.contains(expected_pl2)
    assert prefetcher.stats.useful == 2


def test_completion_times_reflect_hierarchy_state():
    prefetcher, hierarchy = make_prefetcher(levels=(1,))
    va = VMA_START
    cold = prefetcher.on_tlb_miss(va, now=0)
    assert cold[1] == 191
    warm = prefetcher.on_tlb_miss(va, now=1000)
    assert warm[1] == 1000 + 4  # the line is in the L1-D now


def test_miss_outside_tracked_vmas_is_silent():
    prefetcher, hierarchy = make_prefetcher()
    completions = prefetcher.on_tlb_miss(0x1234_0000, now=0)
    assert completions == {}
    assert prefetcher.stats.no_descriptor == 1
    assert hierarchy.prefetches_issued == 0


def test_hole_prefetch_pollutes_but_reports_nothing():
    prefetcher, hierarchy = make_prefetcher(
        levels=(1,), hole_checker=lambda va, level: True
    )
    completions = prefetcher.on_tlb_miss(VMA_START, now=0)
    assert completions == {}
    assert prefetcher.stats.wasted_on_hole == 1
    # The useless line was still fetched (cache pollution is modelled).
    assert hierarchy.prefetches_issued == 1


def test_mshr_exhaustion_drops_prefetches():
    prefetcher, hierarchy = make_prefetcher(levels=(1,))
    for line in range(hierarchy.params.mshr_entries):
        hierarchy.prefetch_line(10_000 + line, now=0)
    completions = prefetcher.on_tlb_miss(VMA_START, now=0)
    assert completions == {}
    assert prefetcher.stats.dropped_no_mshr == 1


def test_p1_config_prefetches_only_pl1():
    prefetcher, _ = make_prefetcher(levels=P1.native_levels)
    completions = prefetcher.on_tlb_miss(VMA_START, now=0)
    assert set(completions) == {1}


def test_accuracy_stat():
    prefetcher, _ = make_prefetcher(levels=(1,))
    prefetcher.on_tlb_miss(VMA_START, now=0)
    assert prefetcher.stats.accuracy == 1.0


class TestAsapConfig:
    def test_baseline_disabled(self):
        assert not BASELINE.enabled
        assert BASELINE.name == "Baseline"

    def test_ladder_names_match_paper(self):
        assert P1.name == "P1"
        assert P1_P2.name == "P1+P2"
        assert FULL_2D.name == "P1g+P1h+P2g+P2h"

    def test_levels_are_sorted_and_deduped(self):
        cfg = AsapConfig(native_levels=(2, 1, 2))
        assert cfg.native_levels == (1, 2)

    def test_invalid_level_rejected(self):
        with pytest.raises(ValueError):
            AsapConfig(native_levels=(4,))

    def test_dimension_flags(self):
        assert P1_P2.needs_native_layout
        assert not P1_P2.needs_guest_layout
        assert FULL_2D.needs_guest_layout
        assert FULL_2D.needs_host_layout
