"""The replicate axis and its compatibility contract.

Two goldens captured *before* the statistics layer existed pin the
contract that makes replication free to adopt: with ``seeds=1`` every
experiment renders byte-identically to the pre-statistics code, and
every replicate-0 job's spec hash — the cache key — is unchanged, so
years of cached results and the CI determinism corpus stay valid.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.experiments import compare, fig3, mt, scaling
from repro.experiments.common import (
    DEFAULT_SCALE,
    REPORT_SEEDS,
    replicates,
)
from repro.runtime.engine import Engine
from repro.sim.runner import Scale
from repro.stats.tables import Cell

GOLDENS = Path(__file__).parent / "goldens"

TINY = Scale(trace_length=3_000, warmup=600, seed=13)
MT_TINY = Scale(trace_length=1_500, warmup=300, seed=13)
SCALING_TINY = Scale(trace_length=1_200, warmup=240, seed=13)


class TestWithReplicate:
    def test_replicate_zero_is_identity(self):
        scale = Scale(1_000, 200, 7)
        assert scale.with_replicate(0) is scale

    def test_derived_seeds_deterministic_and_distinct(self):
        scale = Scale(1_000, 200, 7)
        reps = [scale.with_replicate(r) for r in range(1, 6)]
        seeds = [rep.seed for rep in reps]
        assert len(set(seeds)) == 5
        assert all(seed != scale.seed for seed in seeds)
        assert seeds == [scale.with_replicate(r).seed
                         for r in range(1, 6)]
        for r, rep in zip(range(1, 6), reps):
            assert rep.replicate == r
            assert (rep.trace_length, rep.warmup) == (1_000, 200)

    def test_replicates_of_different_bases_differ(self):
        a = Scale(1_000, 200, 7).with_replicate(1)
        b = Scale(1_000, 200, 8).with_replicate(1)
        assert a.seed != b.seed

    def test_non_base_scale_rejects_replication(self):
        rep = Scale(1_000, 200, 7).with_replicate(2)
        with pytest.raises(ValueError):
            rep.with_replicate(1)

    def test_smaller_preserves_replicate(self):
        rep = Scale(1_000, 200, 7).with_replicate(3)
        small = rep.smaller(2)
        assert small.replicate == 3
        assert small.seed == rep.seed

    def test_replicates_helper(self):
        scale = Scale(1_000, 200, 7)
        reps = replicates(scale, 3)
        assert reps[0] is scale
        assert [rep.replicate for rep in reps] == [0, 1, 2]
        with pytest.raises(ValueError):
            replicates(scale, 0)

    def test_report_default_supports_significance(self):
        # 5-vs-5 Mann-Whitney reaches p = 2/252 < 0.05; three seeds
        # could never mark (min p = 0.1), so the default must be >= 4.
        assert REPORT_SEEDS >= 4


class TestJobIdentity:
    def test_payload_excludes_replicate(self):
        jobs = compare.jobs(TINY, schemes=["baseline"], seeds=2)
        rep1 = next(job for job in jobs if job.scale.replicate == 1)
        assert "replicate" not in json.dumps(rep1.payload())
        assert rep1.label().endswith("rep1")

    def test_replicates_hash_distinctly_via_derived_seed(self):
        jobs = compare.jobs(TINY, schemes=["baseline"], seeds=3)
        hashes = {job.spec_hash() for job in jobs}
        assert len(hashes) == len(jobs)

    def test_job_counts_scale_with_seeds(self):
        base = len(compare.jobs(TINY, seeds=1))
        assert len(compare.jobs(TINY, seeds=3)) == 3 * base
        base_mt = len(mt.jobs(MT_TINY, seeds=1))
        assert len(mt.jobs(MT_TINY, seeds=3)) == 3 * base_mt
        # Scaling replicates only the base rung: two schemes gain one
        # job per extra seed; the 1M/10M-equivalent rungs stay single.
        base_sc = len(scaling.jobs(SCALING_TINY, seeds=1))
        assert len(scaling.jobs(SCALING_TINY, seeds=3)) == base_sc + 2 * 2

    def test_mt_isolated_refs_dedup_with_compare_per_replicate(self):
        shared = set(mt.jobs(MT_TINY, seeds=2)) \
            & set(compare.jobs(MT_TINY, seeds=2))
        assert any(job.scale.replicate == 1 for job in shared)


class TestReplicate0Goldens:
    """seeds=1 must reproduce the pre-statistics output byte-for-byte."""

    def test_spec_hashes_unchanged(self):
        hashes = {}
        for scale, tag in ((TINY, "tiny"), (DEFAULT_SCALE, "report")):
            for job in compare.jobs(scale, seeds=1):
                hashes[f"{tag}/compare/{job.label()}"] = job.spec_hash()
        for job in mt.jobs(MT_TINY, seeds=1):
            hashes[f"mt_tiny/mt/{job.label()}"] = job.spec_hash()
        for job in mt.jobs(DEFAULT_SCALE, seeds=1):
            hashes[f"report/mt/{job.label()}"] = job.spec_hash()
        for job in scaling.jobs(SCALING_TINY, seeds=1):
            hashes[f"scaling_tiny/scaling/{job.label()}"] = \
                job.spec_hash()
        for job in scaling.jobs(DEFAULT_SCALE, seeds=1):
            hashes[f"report/scaling/{job.label()}"] = job.spec_hash()
        golden = json.loads(
            (GOLDENS / "replicate0_spec_hashes.json").read_text())
        assert hashes == golden

    def test_tables_byte_identical(self):
        sections = []
        for tables in (compare.run(TINY, seeds=1),
                       mt.run(MT_TINY, seeds=1),
                       (scaling.run(SCALING_TINY, seeds=1),),
                       (fig3.run(TINY),)):
            sections.extend(table.render() for table in tables)
        text = "\n\n".join(sections) + "\n"
        golden = (GOLDENS / "replicate0_tables.txt").read_text()
        assert text == golden


class TestMultiSeedEndToEnd:
    def test_compare_cells_carry_replication(self, monkeypatch):
        monkeypatch.setattr(compare, "ALL_NAMES", ("mcf",))
        micro = Scale(trace_length=800, warmup=160, seed=13)
        ranking, native, virt = compare.run(
            micro, Engine(jobs=1), schemes=["baseline", "asap"],
            seeds=2)
        cell = native.rows[0]["asap"]
        assert isinstance(cell, Cell)
        assert len(cell.samples) == 2
        assert cell.ci is not None
        assert "±" in cell.render()
        # Two seeds cannot reach p < 0.05 (min exact p is 1/3): the
        # interval renders, the marker never fires.
        assert not cell.significant
        baseline_cell = native.rows[0]["baseline"]
        assert baseline_cell.p_value is None  # baseline vs itself
