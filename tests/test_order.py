"""Unit tests for first-touch ordering models (demand paging order)."""

import numpy as np
import pytest

from repro.sim.order import first_touch_order


def test_sequential_is_va_order():
    vpns = np.array([9, 3, 7, 3, 1], dtype=np.int64)
    assert first_touch_order(vpns, "sequential").tolist() == [1, 3, 7, 9]


def test_demand_is_first_touch_order():
    vpns = np.array([9, 3, 7, 3, 1], dtype=np.int64)
    assert first_touch_order(vpns, "demand").tolist() == [9, 3, 7, 1]


def test_chunked_sorts_within_chunks():
    # Chunk = vpn >> 8.  Two chunks, touched B-chunk first.
    vpns = np.array([600, 10, 520, 30, 512], dtype=np.int64)
    out = first_touch_order(vpns, "chunked").tolist()
    assert out == [512, 520, 600, 10, 30]


def test_all_orders_cover_all_pages():
    rng = np.random.default_rng(1)
    vpns = rng.integers(0, 5000, size=2000)
    for order in ("sequential", "demand", "chunked"):
        out = first_touch_order(vpns, order)
        assert set(out.tolist()) == set(np.unique(vpns).tolist())
        assert len(out) == len(np.unique(vpns))


def test_unknown_order_raises():
    with pytest.raises(ValueError):
        first_touch_order(np.array([1]), "random")


def test_workload_spec_validates_order():
    from repro.workloads.base import VmaSpec, WorkloadSpec

    with pytest.raises(ValueError):
        WorkloadSpec(
            name="x", description="",
            vmas=(VmaSpec(name="v", size_bytes=4096, weight=1.0),),
            init_order="bogus",
        )
