"""The translation-scheme subsystem: specs, parity, behaviour, compare.

The golden-value classes pin the refactor's central promise: routing
baseline and ASAP through the ``TranslationScheme`` interface produces
**byte-identical** ``SimStats`` to the pre-scheme simulators.  The
golden numbers below were captured from the dispatch code as it stood
before `repro.schemes` existed (same workloads, same scales, same
seeds); any drift here means the hot path changed behaviour.
"""

import pytest

from repro.core import config as cfg
from repro.experiments import compare
from repro.runtime import NATIVE, PT_INVENTORY, VIRTUALIZED, Engine, Job
from repro.schemes import (
    AsapScheme,
    BaselineRadix,
    RevelatorLike,
    SchemeSpec,
    VictimaLike,
    build_scheme,
)
from repro.sim.runner import Scale, run_native, run_virtualized

NSCALE = Scale(trace_length=6_000, warmup=1_000, seed=7)
VSCALE = Scale(trace_length=4_000, warmup=800, seed=7)

#: SimStats fields checked against the pre-refactor goldens.
FIELDS = ("accesses", "cycles", "base_cycles", "data_cycles",
          "walk_cycles", "walks", "tlb_l1_hits", "tlb_l2_hits",
          "prefetches_issued", "prefetches_useful", "prefetches_dropped")

#: Captured from the pre-scheme simulators (see module docstring).
GOLDEN = {
    "native-baseline": (5000, 1172312, 10000, 576554, 585758, 3610,
                        168, 1222, 0, 0, 0),
    "native-asap": (5000, 1075029, 10000, 576302, 488727, 3610,
                    168, 1222, 8752, 8752, 0),
    "native-coloc-asap": (5000, 1136855, 10000, 615594, 511261, 3610,
                          168, 1222, 8752, 8752, 0),
    "virt-baseline": (3200, 984727, 6400, 389136, 589191, 2328,
                      115, 757, 0, 0, 0),
    "virt-full": (3200, 878143, 6400, 389464, 482279, 2328,
                  115, 757, 25618, 25618, 0),
}


def _assert_golden(tag, stats):
    got = tuple(getattr(stats, field) for field in FIELDS)
    assert got == GOLDEN[tag], (
        f"{tag}: scheme-dispatch stats drifted from the pre-refactor "
        f"simulators: {dict(zip(FIELDS, got))}")


class TestGoldenParity:
    def test_native_baseline(self):
        _assert_golden("native-baseline",
                       run_native("mc80", cfg.BASELINE, scale=NSCALE))

    def test_native_asap(self):
        _assert_golden("native-asap",
                       run_native("mc80", cfg.P1_P2, scale=NSCALE))

    def test_native_colocated_asap(self):
        _assert_golden("native-coloc-asap",
                       run_native("mc80", cfg.P1_P2, colocated=True,
                                  scale=NSCALE))

    def test_virtualized_baseline(self):
        _assert_golden("virt-baseline",
                       run_virtualized("mc80", cfg.BASELINE, scale=VSCALE))

    def test_virtualized_full_2d(self):
        _assert_golden("virt-full",
                       run_virtualized("mc80", cfg.FULL_2D, scale=VSCALE))

    def test_explicit_spec_equals_derived(self):
        derived = run_native("mc80", cfg.P1_P2, scale=NSCALE)
        explicit = run_native("mc80", cfg.P1_P2, scale=NSCALE,
                              scheme=SchemeSpec(kind="asap"))
        assert derived.cycles == explicit.cycles
        assert derived.walk_cycles == explicit.walk_cycles


class TestSchemeSpec:
    def test_rejects_unknown_kind(self):
        with pytest.raises(ValueError):
            SchemeSpec(kind="oracle")

    def test_rejects_bad_coverage(self):
        with pytest.raises(ValueError):
            SchemeSpec.revelator(coverage=1.5)

    def test_params_are_canonically_sorted(self):
        a = SchemeSpec(kind="revelator", params=(("b", 2), ("a", 1)))
        b = SchemeSpec(kind="revelator", params=(("a", 1), ("b", 2)))
        assert a == b
        assert a.payload() == b.payload()

    def test_for_config(self):
        assert SchemeSpec.for_config(cfg.BASELINE).kind == "baseline"
        assert SchemeSpec.for_config(cfg.P1_P2).kind == "asap"

    def test_build_scheme_dispatch(self):
        assert isinstance(build_scheme(None, cfg.P1_P2), AsapScheme)
        assert isinstance(build_scheme(None, cfg.BASELINE), BaselineRadix)
        assert isinstance(build_scheme(SchemeSpec.victima()), VictimaLike)
        assert isinstance(build_scheme(SchemeSpec.revelator()),
                          RevelatorLike)

    def test_build_scheme_rejects_config_mismatch(self):
        with pytest.raises(ValueError):
            build_scheme(SchemeSpec.victima(), cfg.P1_P2)

    def test_baseline_scheme_opts_out_of_every_hook(self):
        scheme = build_scheme(None, cfg.BASELINE)
        assert scheme.probe_hook() is None
        assert scheme.walk_start_hook() is None
        assert scheme.walk_end_hook() is None
        assert scheme.fill_hook() is None


class TestJobIntegration:
    def test_scheme_is_derived_from_config(self):
        assert Job(kind=NATIVE, workload="mcf").scheme.kind == "baseline"
        assert Job(kind=NATIVE, workload="mcf",
                   config=cfg.P1_P2).scheme.kind == "asap"

    def test_rejects_asap_scheme_without_ladder(self):
        with pytest.raises(ValueError):
            Job(kind=NATIVE, workload="mcf",
                scheme=SchemeSpec(kind="asap"))

    def test_rejects_ladder_on_non_asap_scheme(self):
        with pytest.raises(ValueError):
            Job(kind=NATIVE, workload="mcf", config=cfg.P1_P2,
                scheme=SchemeSpec.victima())

    def test_rejects_uncomposable_tlb_variants(self):
        with pytest.raises(ValueError):
            Job(kind=NATIVE, workload="mcf",
                scheme=SchemeSpec.victima(), infinite_tlb=True)
        with pytest.raises(ValueError):
            Job(kind=NATIVE, workload="mcf",
                scheme=SchemeSpec.revelator(), clustered_tlb=True)

    def test_pt_inventory_rejects_schemes(self):
        with pytest.raises(ValueError):
            Job(kind=PT_INVENTORY, workload="mcf",
                scheme=SchemeSpec.victima())

    def test_spec_hash_distinguishes_schemes(self):
        base = Job(kind=NATIVE, workload="mcf")
        vic = Job(kind=NATIVE, workload="mcf",
                  scheme=SchemeSpec.victima())
        rev = Job(kind=NATIVE, workload="mcf",
                  scheme=SchemeSpec.revelator())
        assert len({base.spec_hash(), vic.spec_hash(),
                    rev.spec_hash()}) == 3

    def test_label_shows_non_default_schemes(self):
        job = Job(kind=NATIVE, workload="mcf",
                  scheme=SchemeSpec.victima())
        assert "victima" in job.label()


SMALL = Scale(trace_length=5_000, warmup=1_000, seed=7)


class TestVictima:
    def test_parks_probes_and_avoids_walks(self):
        base = run_native("mc80", scale=SMALL)
        vic = run_native("mc80", scale=SMALL, scheme=SchemeSpec.victima())
        assert vic.scheme_stats["parked"] > 0
        assert vic.scheme_stats["probe_hits"] > 0
        assert vic.walks < base.walks  # extended translation reach

    def test_probe_hits_are_cheap(self):
        base = run_native("mc80", scale=SMALL)
        vic = run_native("mc80", scale=SMALL, scheme=SchemeSpec.victima())
        # A probe hit costs L2 latency (12cy) instead of a walk, so
        # total translation cycles must stay in the baseline's
        # neighbourhood even though parked lines pollute the caches.
        assert vic.walk_cycles < 1.05 * base.walk_cycles
        # And per *avoided walk* the translation got cheaper: the same
        # translation demand is served with materially fewer walks.
        assert vic.walks <= base.walks - 100

    def test_deterministic(self):
        a = run_native("mc80", scale=SMALL, scheme=SchemeSpec.victima())
        b = run_native("mc80", scale=SMALL, scheme=SchemeSpec.victima())
        assert a.cycles == b.cycles
        assert a.scheme_stats == b.scheme_stats

    def test_virtualized_mode(self):
        vic = run_virtualized("mcf", scale=VSCALE,
                              scheme=SchemeSpec.victima())
        assert vic.scheme_stats["parked"] > 0

    def test_rejects_clustered_tlb(self):
        with pytest.raises(ValueError):
            run_native("mcf", scale=SMALL, clustered_tlb=True,
                       scheme=SchemeSpec.victima())


class TestRevelator:
    def test_speculation_hides_translation_latency(self):
        base = run_native("mc80", scale=SMALL)
        rev = run_native("mc80", scale=SMALL,
                         scheme=SchemeSpec.revelator())
        # The verification walk always runs (same walk count)...
        assert rev.walks == base.walks
        # ...but correct speculations keep it off the critical path.
        assert rev.walk_cycles < base.walk_cycles
        stats = rev.scheme_stats
        assert stats["correct"] + stats["mispredicts"] \
            == stats["speculations"]
        assert stats["correct"] > stats["mispredicts"]

    def test_zero_coverage_only_penalises(self):
        base = run_native("mc80", scale=SMALL)
        rev = run_native("mc80", scale=SMALL,
                         scheme=SchemeSpec.revelator(coverage=0.0))
        assert rev.scheme_stats["correct"] == 0
        # Every miss now pays walk + squash penalty.
        assert rev.walk_cycles > base.walk_cycles

    def test_coverage_tracks_lottery(self):
        rev = run_native("mc80", scale=SMALL,
                         scheme=SchemeSpec.revelator(coverage=0.85))
        stats = rev.scheme_stats
        hit_rate = stats["correct"] / stats["speculations"]
        assert 0.75 < hit_rate < 0.95

    def test_virtualized_mode(self):
        base = run_virtualized("mcf", scale=VSCALE)
        rev = run_virtualized("mcf", scale=VSCALE,
                              scheme=SchemeSpec.revelator())
        assert rev.walk_cycles < base.walk_cycles


class TestCompareExperiment:
    ROSTER = ["baseline", "asap", "victima", "revelator"]
    TINY = Scale(trace_length=2_000, warmup=400, seed=13)

    def test_rejects_unknown_scheme(self):
        with pytest.raises(ValueError):
            compare.jobs(self.TINY, schemes=["baseline", "oracle"])

    def test_jobs_cover_roster_and_modes(self):
        jobs = compare.jobs(self.TINY)
        kinds = {job.kind for job in jobs}
        assert kinds == {NATIVE, VIRTUALIZED}
        schemes = {job.scheme.kind for job in jobs}
        assert schemes == {"baseline", "asap", "victima", "revelator"}

    def test_serial_vs_parallel_identity(self, monkeypatch):
        # The acceptance property for `repro compare`: --jobs 4 renders
        # byte-identical tables to serial.  Two workloads keep the grid
        # small; every scheme and both modes stay covered.
        monkeypatch.setattr(compare, "ALL_NAMES", ("mcf", "canneal"))
        serial = [t.render() for t in
                  compare.run(self.TINY, Engine(jobs=1),
                              schemes=self.ROSTER, seeds=1)]
        parallel = [t.render() for t in
                    compare.run(self.TINY, Engine(jobs=4),
                                schemes=self.ROSTER, seeds=1)]
        assert serial == parallel

    def test_ranking_table_shape(self, monkeypatch):
        monkeypatch.setattr(compare, "ALL_NAMES", ("mcf",))
        ranking, native, virt = compare.run(
            self.TINY, Engine(jobs=1), schemes=["baseline", "revelator"],
            seeds=1)
        assert [row["scheme"] for row in ranking.rows] \
            == sorted(("baseline", "revelator"),
                      key=lambda n: ranking.row_by("scheme", n)["mean_%"])
        assert [row["rank"] for row in ranking.rows] == [1, 2]
        for table in (native, virt):
            assert table.rows[-1]["workload"] == "Average"
