"""Unit tests for the trace-generation primitives."""

import numpy as np
import pytest

from repro.workloads import generators as g


@pytest.fixture
def rng():
    return np.random.default_rng(7)


class TestBoundedZipf:
    def test_range(self, rng):
        ranks = g.bounded_zipf(rng, 1000, 1.0, 10_000)
        assert ranks.min() >= 0
        assert ranks.max() < 1000

    def test_skew_increases_with_alpha(self, rng):
        low = g.bounded_zipf(rng, 100_000, 0.6, 50_000)
        high = g.bounded_zipf(rng, 100_000, 1.3, 50_000)
        # Share of samples landing on the top-100 ranks.
        low_share = np.mean(low < 100)
        high_share = np.mean(high < 100)
        assert high_share > 2 * low_share

    def test_supports_sub_one_alpha(self, rng):
        ranks = g.bounded_zipf(rng, 1000, 0.5, 1000)
        assert ranks.max() < 1000

    def test_rank_zero_is_most_popular(self, rng):
        ranks = g.bounded_zipf(rng, 1000, 1.2, 50_000)
        counts = np.bincount(ranks, minlength=1000)
        assert counts[0] == counts.max()

    def test_validation(self, rng):
        with pytest.raises(ValueError):
            g.bounded_zipf(rng, 0, 1.0, 10)
        with pytest.raises(ValueError):
            g.bounded_zipf(rng, 10, 0.0, 10)


class TestPermute:
    def test_is_a_bijection(self):
        n = 10_000
        values = np.arange(n, dtype=np.int64)
        out = g.permute(values, n, seed=3)
        assert len(np.unique(out)) == n
        assert out.min() >= 0
        assert out.max() < n

    def test_deterministic_per_seed(self):
        values = np.arange(500, dtype=np.int64)
        assert np.array_equal(g.permute(values, 500, 9),
                              g.permute(values, 500, 9))
        assert not np.array_equal(g.permute(values, 500, 9),
                                  g.permute(values, 500, 10))

    def test_scatters_neighbours(self):
        values = np.arange(1000, dtype=np.int64)
        out = g.permute(values, 100_000, seed=1)
        # Consecutive inputs should not stay consecutive.
        adjacent = np.mean(np.abs(np.diff(out)) == 1)
        assert adjacent < 0.05

    def test_tiny_domain(self):
        values = np.array([0], dtype=np.int64)
        assert g.permute(values, 1, 5).tolist() == [0]


class TestSpatialPatterns:
    def test_sequential_runs_have_runs(self, rng):
        pages = g.sequential_runs(rng, 1_000_000, 10_000, mean_run=32.0)
        increments = np.diff(pages)
        assert np.mean(increments == 1) > 0.8

    def test_sequential_runs_wrap(self, rng):
        pages = g.sequential_runs(rng, 100, 1000, mean_run=16.0)
        assert pages.max() < 100

    def test_gaussian_walk_stays_local(self, rng):
        pages = g.gaussian_walk(rng, 1_000_000, 10_000, step_pages=8.0)
        jumps = np.abs(np.diff(pages))
        wrapped = np.minimum(jumps, 1_000_000 - jumps)
        assert np.median(wrapped) < 32

    def test_uniform_covers_space(self, rng):
        pages = g.uniform_pages(rng, 100, 10_000)
        assert len(np.unique(pages)) == 100

    def test_run_validation(self, rng):
        with pytest.raises(ValueError):
            g.sequential_runs(rng, 100, 10, mean_run=0.5)


class TestInterleave:
    def test_preserves_stream_order(self, rng):
        a = np.arange(0, 1000, dtype=np.int64)
        b = np.arange(10_000, 11_000, dtype=np.int64)
        mixed = g.interleave(rng, [a, b], [0.5, 0.5], 800)
        from_a = mixed[mixed < 1000]
        assert np.all(np.diff(from_a) > 0)

    def test_respects_weights(self, rng):
        a = np.zeros(10_000, dtype=np.int64)
        b = np.ones(10_000, dtype=np.int64)
        mixed = g.interleave(rng, [a, b], [0.9, 0.1], 10_000)
        assert 0.85 < np.mean(mixed == 0) < 0.95

    def test_validation(self, rng):
        with pytest.raises(ValueError):
            g.interleave(rng, [np.arange(4)], [0.5, 0.5], 4)


def test_pages_to_addresses_fixed_offset_per_page():
    rng = np.random.default_rng(0)
    pages = np.array([5, 5, 9], dtype=np.int64)
    addrs = g.pages_to_addresses(rng, 1 << 40, pages)
    assert addrs[0] == addrs[1]  # same page, same line
    assert (addrs[0] >> 12) == (1 << 28) + 5
    assert addrs[2] != addrs[0]
