"""Tests for the run-telemetry subsystem (repro.obs).

Three contracts matter:

* **schema** — a written log round-trips through the reader, and the
  validator actually catches malformed logs (unknown types, broken
  nesting, time travel);
* **determinism** — SimStats are identical with observation off, on,
  and on-with-sampling, for both kernels, both virtualization modes and
  the multi-tenant mix (the sampler only acts at chunk boundaries, and
  every chunking of a trace is pinned byte-identical);
* **integration** — the engine writes a valid log for a sweep (worker
  batches rebased onto one timeline, cache hits recorded), worker
  crashes are attributed to a job, and the ``repro obs`` commands run
  against a real log.
"""

from __future__ import annotations

import dataclasses
import json

import pytest

from repro.cli import main
from repro.experiments.common import SCHEMES
from repro.obs import events as obs_events
from repro.obs import reader, summary
from repro.obs.events import Recorder, capture
from repro.obs.export import to_chrome_trace
from repro.obs.probe import SimProbe
from repro.obs.timeline import render_timeline
from repro.runtime.engine import Engine, JobExecutionError
from repro.runtime.job import Job
from repro.sim import columnar
from repro.sim.multitenant import MultiTenantSpec, run_native_mt
from repro.sim.runner import Scale, run_native, run_virtualized
from repro.traces.store import materialize_trace, read_ref
from repro.workloads.suite import get as get_workload

TINY = Scale(trace_length=4_000, warmup=800, seed=13)


@pytest.fixture(autouse=True)
def _no_leaked_recorder():
    """Every test starts and ends with observation off."""
    obs_events.deactivate()
    yield
    obs_events.deactivate()


def _write_log(tmp_path, emit) -> str:
    path = tmp_path / "log.jsonl"
    recorder = Recorder(path=path, meta={"origin": "test"})
    emit(recorder)
    recorder.close()
    return str(path)


# ----------------------------------------------------------------------
# schema round-trip and validation
# ----------------------------------------------------------------------
class TestSchema:
    def test_round_trip(self, tmp_path):
        def emit(r):
            with r.span("sweep", "engine", jobs=2):
                r.instant("cache_hit", "engine", job="a")
                r.counter("chunk", "sim", records=100, walks=7)
        path = _write_log(tmp_path, emit)
        header, events = reader.read_log(path)
        assert header["schema"] == obs_events.SCHEMA_VERSION
        assert header["meta"] == {"origin": "test"}
        assert [e["type"] for e in events] == ["B", "I", "C", "E"]
        assert reader.validate(header, events) == []

    def test_rejects_missing_header(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"type":"B","ts":0,"name":"x"}\n')
        with pytest.raises(reader.ObsLogError):
            reader.read_log(str(path))

    def test_rejects_wrong_schema_version(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text(json.dumps(
            {"type": "header", "schema": 999, "pid": 1}) + "\n")
        with pytest.raises(reader.ObsLogError):
            reader.read_log(str(path))

    def test_validate_catches_unknown_type(self, tmp_path):
        path = _write_log(tmp_path, lambda r: r._emit("Z", "x", "c", None))
        problems = reader.validate(*reader.read_log(path))
        assert any("type" in p for p in problems)

    def test_validate_catches_broken_nesting(self, tmp_path):
        def emit(r):
            r.begin("outer", "t")
            r.begin("inner", "t")
            r.end("outer")
            r.end("inner")
        problems = reader.validate(
            *reader.read_log(_write_log(tmp_path, emit)))
        assert problems

    def test_validate_catches_unclosed_span(self, tmp_path):
        problems = reader.validate(
            *reader.read_log(_write_log(
                tmp_path, lambda r: r.begin("open", "t"))))
        assert any("unclosed" in p for p in problems)

    def test_validate_catches_time_travel(self, tmp_path):
        def emit(r):
            r.begin("a", "t")
            r.end("a")
        path = _write_log(tmp_path, emit)
        header, events = reader.read_log(path)
        events[1]["ts"] = events[0]["ts"] - 1.0
        assert any("< previous" in p
                   for p in reader.validate(header, events))

    def test_spans_pair_and_nest(self, tmp_path):
        def emit(r):
            with r.span("outer", "t"):
                with r.span("inner", "t", detail=1):
                    pass
        header, events = reader.read_log(_write_log(tmp_path, emit))
        spans = reader.spans(header, events)
        by_name = {s["name"]: s for s in spans}
        assert by_name["outer"]["depth"] == 0
        assert by_name["inner"]["depth"] == 1
        assert by_name["inner"]["args"] == {"detail": 1}
        assert by_name["outer"]["t0"] <= by_name["inner"]["t0"]
        assert by_name["inner"]["t1"] <= by_name["outer"]["t1"]

    def test_merge_batch_rebases_timestamps(self, tmp_path):
        parent = Recorder(path=tmp_path / "parent.jsonl")
        with capture() as worker:
            worker.begin("job", "engine")
            worker.end("job")
            batch = worker.export_batch()
        # Simulate a worker whose wall origin is 10s after the parent's.
        batch = dict(batch, t0_wall=parent.t0_wall + 10.0)
        parent.merge_batch(batch)
        parent.close()
        _, events = reader.read_log(str(tmp_path / "parent.jsonl"))
        assert all(e["ts"] >= 10.0 for e in events)

    def test_capture_restores_previous_recorder(self):
        outer = Recorder()
        obs_events.activate(outer)
        with capture() as inner:
            assert obs_events.active() is inner
        assert obs_events.active() is outer


# ----------------------------------------------------------------------
# the sampling probe
# ----------------------------------------------------------------------
class TestSimProbe:
    def test_inactive_probe_is_none(self):
        assert SimProbe.create("native", warmup=10) is None

    def test_chunks_cut_at_warmup_and_interval(self):
        import numpy as np

        with capture(sample_records=1000) as recorder:
            probe = SimProbe.create("native", warmup=1200)
            data = np.arange(3500)
            cuts = list(probe.chunks(iter([data])))
            # Boundaries: 1000 (interval), 1200 (warmup), 2000, 3000.
            assert [len(c) for c in cuts] == [1000, 200, 800, 1000, 500]
            joined = np.concatenate(cuts)
            assert np.array_equal(joined, data)
            # Views, not copies: the cuts alias the source buffer.
            assert all(c.base is not None for c in cuts)
        assert recorder is not None

    def test_sample_flips_warmup_to_measure(self):
        with capture() as recorder:
            probe = SimProbe.create("native", warmup=100)
            probe.run_begin(kernel="scalar")
            probe.sample(100, walks=1)
            probe.sample(200, walks=2)
            probe.run_end()
        names = [(e["type"], e["name"]) for e in recorder.events]
        assert ("E", "warmup") in names and ("B", "measure") in names
        assert names.index(("E", "warmup")) < names.index(("B", "measure"))


# ----------------------------------------------------------------------
# determinism: stats identical with observation off / on / sampled
# ----------------------------------------------------------------------
def _observed(run, sample_records=None):
    with capture(sample_records=sample_records) as recorder:
        stats = run()
    assert recorder.events, "observation recorded nothing"
    return stats


class TestDeterminism:
    @pytest.mark.parametrize("virtualized", [False, True])
    def test_scalar_stats_identical(self, virtualized):
        entry = SCHEMES["asap"]
        config = entry.virt_config if virtualized else entry.native_config
        runner = run_virtualized if virtualized else run_native

        def run():
            return runner("mc80", config, scale=TINY, scheme=entry.spec)

        baseline = run()
        assert _observed(run) == baseline
        assert _observed(run, sample_records=700) == baseline

    @pytest.mark.skipif(not columnar.columnar_available(),
                        reason="no C compiler/cffi for the columnar "
                               "backend")
    def test_columnar_stats_identical(self, monkeypatch):
        monkeypatch.setenv("REPRO_REQUIRE_CCORE", "1")

        def run():
            return run_native("mc80", scale=TINY, kernel="columnar",
                              collect_service=False)

        baseline = run()
        assert _observed(run) == baseline
        assert _observed(run, sample_records=700) == baseline

    def test_mt_stats_identical(self):
        mt = MultiTenantSpec(tenants=2, quantum=500, switch_policy="flush")

        def run():
            return run_native_mt("mc80", mt=mt, scale=TINY,
                                 collect_service=False)

        baseline = run()
        assert _observed(run) == baseline
        assert _observed(run, sample_records=300) == baseline


# ----------------------------------------------------------------------
# engine integration
# ----------------------------------------------------------------------
def _jobs(n=3):
    return [Job(kind="native", workload=w, scale=TINY)
            for w in ("mcf", "bfs", "mc80")[:n]]


class TestEngineObs:
    def test_sweep_writes_valid_log(self, tmp_path):
        engine = Engine(jobs=2, cache=None, obs=True,
                        obs_dir=str(tmp_path / "obs"))
        engine.run_jobs(_jobs())
        assert engine.last_obs_path is not None
        header, events = reader.read_log(str(engine.last_obs_path))
        assert reader.validate(header, events) == []
        digest = summary.summarize(header, events)
        assert digest["cache"]["executed"] == 3
        jobs = {j["job"] for j in digest["jobs"]}
        assert any("mcf" in j for j in jobs)
        # Worker events were rebased onto the engine's timeline: every
        # job span sits inside the sweep span.
        sweep = next(s for s in reader.spans(header, events)
                     if s["name"] == "sweep")
        for span in reader.spans(header, events):
            if span["name"] == "job":
                assert sweep["t0"] <= span["t0"] <= sweep["t1"]

    def test_cache_hits_recorded(self, tmp_path):
        from repro.runtime.cache import ResultCache

        cache_dir = str(tmp_path / "cache")
        for _ in range(2):
            engine = Engine(jobs=1, cache=ResultCache(cache_dir),
                            obs=True, obs_dir=str(tmp_path / "obs"))
            engine.run_jobs(_jobs(2))
        header, events = reader.read_log(str(engine.last_obs_path))
        assert len(reader.instants(header, events, "cache_hit")) == 2
        assert summary.summarize(header, events)["cache"]["hit_rate"] == 1.0

    def test_results_identical_with_obs(self, tmp_path):
        jobs = _jobs(2)
        plain = Engine(jobs=1, cache=None).run_jobs(jobs)
        observed = Engine(jobs=1, cache=None, obs=True,
                          obs_dir=str(tmp_path / "obs")).run_jobs(jobs)
        assert plain == observed

    def test_pool_crash_names_the_job(self, tmp_path):
        trace_dir = tmp_path / "trace"
        ref = materialize_trace(get_workload("mcf"), TINY.trace_length,
                                TINY.seed, trace_dir)
        bad_ref = dataclasses.replace(ref, digest="0" * 64)
        bad = Job(kind="native", workload="mcf", scale=TINY, trace=bad_ref)
        good = Job(kind="native", workload="bfs", scale=TINY)
        engine = Engine(jobs=2, cache=None)
        with pytest.raises(JobExecutionError) as exc_info:
            engine.run_jobs([bad, good])
        message = str(exc_info.value)
        assert bad.label() in message
        assert bad.spec_hash()[:12] in message

    def test_read_ref_round_trip_still_works(self, tmp_path):
        # Guard for the crash fixture: an untampered ref executes fine.
        trace_dir = tmp_path / "trace"
        materialize_trace(get_workload("mcf"), TINY.trace_length,
                          TINY.seed, trace_dir)
        ref = read_ref(trace_dir)
        job = Job(kind="native", workload="mcf", scale=TINY, trace=ref)
        results = Engine(jobs=1, cache=None).run_jobs([job])
        assert results[job].accesses > 0


# ----------------------------------------------------------------------
# aggregation + CLI
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def engine_log(tmp_path_factory):
    tmp_path = tmp_path_factory.mktemp("obs")
    engine = Engine(jobs=2, cache=None, obs=True, obs_dir=str(tmp_path))
    engine.run_jobs(_jobs())
    return str(engine.last_obs_path)


class TestAggregation:
    def test_summary_table(self, engine_log):
        digest = summary.summarize(*reader.read_log(engine_log))
        text = summary.render_summary(digest)
        assert "hit rate" in text and "worker pid" in text
        for job in digest["jobs"]:
            accounted = sum(job["phases"].values())
            assert accounted == pytest.approx(job["seconds"], abs=1e-3)

    def test_timeline_renders(self, engine_log):
        text = render_timeline(*reader.read_log(engine_log))
        assert "wall" in text and "pid" in text
        assert "A = " in text

    def test_chrome_trace_export(self, engine_log):
        header, events = reader.read_log(engine_log)
        trace = to_chrome_trace(header, events)
        assert trace["otherData"]["run_id"] == header["run_id"]
        phases = {e["ph"] for e in trace["traceEvents"]}
        assert {"B", "E", "M"} <= phases
        # Perfetto wants microseconds.
        sweep_b = next(e for e in trace["traceEvents"]
                       if e["name"] == "sweep" and e["ph"] == "B")
        original = next(e for e in events if e["name"] == "sweep")
        assert sweep_b["ts"] == pytest.approx(original["ts"] * 1e6, abs=1)

    def test_dashboard_builds(self, engine_log, tmp_path):
        from repro.obs.dashboard import build_dashboard

        html = build_dashboard([reader.read_log(engine_log)])
        assert html.startswith("<!DOCTYPE html>")
        assert "<svg" in html and "Worker utilization" in html


class TestCli:
    def test_obs_summary_and_timeline(self, engine_log, capsys):
        assert main(["obs", "summary", engine_log]) == 0
        assert "hit rate" in capsys.readouterr().out
        assert main(["obs", "timeline", engine_log]) == 0
        assert "pid" in capsys.readouterr().out

    def test_obs_validate(self, engine_log, capsys):
        assert main(["obs", "validate", engine_log, "--json"]) == 0
        verdict = json.loads(capsys.readouterr().out)
        assert verdict["problems"] == []

    def test_obs_export_and_dashboard(self, engine_log, tmp_path, capsys):
        out = str(tmp_path / "t.json")
        assert main(["obs", "export", engine_log, "--out", out]) == 0
        assert json.load(open(out))["traceEvents"]
        page = str(tmp_path / "d.html")
        assert main(["obs", "dashboard", engine_log, "--out", page]) == 0
        assert "<svg" in open(page).read()
        capsys.readouterr()

    def test_obs_missing_log_fails_cleanly(self, tmp_path, capsys):
        assert main(["obs", "summary", "--cache-dir",
                     str(tmp_path / "empty")]) == 2
        assert "error" in capsys.readouterr().err

    def test_sweep_obs_flag(self, tmp_path, capsys):
        obs_dir = tmp_path / "obs"
        assert main(["sweep", "--only", "table2", "--trace-length", "2000",
                     "--no-cache", "--obs",
                     "--obs-dir", str(obs_dir)]) == 0
        capsys.readouterr()
        logs = list(obs_dir.glob("sweep-*.jsonl"))
        assert len(logs) == 1
        header, events = reader.read_log(str(logs[0]))
        assert reader.validate(header, events) == []
