"""Streaming-trace golden parity: chunked execution is byte-identical.

The chunk-seam invariant (docs/ARCHITECTURE.md §11): simulating the same
records through *any* execution chunking — one ndarray, 4096-record
chunks, one record at a time, generated or memory-mapped — produces
byte-identical SimStats and service distributions.  This suite pins that
for all four schemes in both modes at the report scale (60k), for a
multi-tenant mix, across a chunk-size sweep on a deliberately streaky
trace, and for the on-disk format end to end (materialize → hash →
mmap-replay → Job/engine).
"""

import dataclasses

import numpy as np
import pytest

from repro.core import config as cfg
from repro.runtime.engine import Engine
from repro.runtime.job import Job, execute_job
from repro.schemes import SchemeSpec
from repro.sim import runner as runner_mod
from repro.sim.multitenant import MultiTenantSpec, run_native_mt
from repro.sim.order import first_touch_order, streaming_first_touch_order
from repro.sim.runner import Scale, build_vm, make_trace
from repro.sim.simulator import NativeSimulation
from repro.sim.virt import VirtualizedSimulation
from repro.traces import (
    GEN_CHUNK_RECORDS,
    ArraySource,
    GeneratedSource,
    canonical_trace,
    chunk_seed,
    materialize_trace,
    open_trace,
    read_ref,
    verify_trace,
)
from repro.traces import stream as stream_mod
from repro.workloads.base import KeyValue
from repro.workloads.suite import get

REPORT_SCALE = Scale(trace_length=60_000, warmup=12_000, seed=42)

#: (scheme kind, native config, virtualized config).
SCHEME_CASES = (
    ("baseline", cfg.BASELINE, cfg.BASELINE),
    ("asap", cfg.P1_P2, cfg.FULL_2D),
    ("victima", cfg.BASELINE, cfg.BASELINE),
    ("revelator", cfg.BASELINE, cfg.BASELINE),
)


def stats_key(stats):
    """Everything a SimStats observable carries, comparable."""
    return (
        stats.accesses, stats.cycles, stats.base_cycles, stats.data_cycles,
        stats.walk_cycles, stats.walks, stats.tlb_l1_hits,
        stats.tlb_l2_hits, stats.prefetches_issued,
        stats.prefetches_useful, stats.prefetches_dropped,
        tuple(sorted(stats.scheme_stats.items())),
        tuple(sorted(
            (str(level), tuple(sorted(counts.items())))
            for level, counts in stats.service._counts.items())),
    )


def run_native_once(kind, config, trace, scale=REPORT_SCALE,
                    workload="mc80"):
    spec = get(workload)
    process = spec.build_process(asap_levels=config.native_levels,
                                 seed=scale.seed)
    sim = NativeSimulation(process, asap=config,
                           scheme=SchemeSpec(kind=kind))
    return sim.run(trace, warmup=scale.warmup, init_order=spec.init_order)


def run_virt_once(kind, config, trace, scale=REPORT_SCALE,
                  workload="mc80"):
    spec = get(workload)
    vm = build_vm(spec, config, scale)
    sim = VirtualizedSimulation(vm, asap=config,
                                scheme=SchemeSpec(kind=kind))
    return sim.run(trace, warmup=scale.warmup, init_order=spec.init_order)


# ----------------------------------------------------------------------
class TestCanonicalGeneration:

    def test_chunk_seed_identity_for_chunk_zero(self):
        assert chunk_seed(42, 0) == 42
        assert chunk_seed(42, 1) != 42
        assert chunk_seed(42, 1) != chunk_seed(42, 2)
        assert chunk_seed(42, 1) != chunk_seed(43, 1)

    def test_short_trace_identical_to_monolithic_generate(self):
        spec = get("mc80")
        monolithic = spec.generate_trace(3_000, seed=7)
        assert np.array_equal(canonical_trace(spec, 3_000, 7), monolithic)

    def test_multi_chunk_content(self, monkeypatch):
        # Shrink the generation chunk so the multi-chunk path runs at
        # test scale; content changes with it (it is content-defining),
        # but the chunk plumbing must stay consistent with itself.
        monkeypatch.setattr(stream_mod, "GEN_CHUNK_RECORDS", 256)
        spec = get("mcf")
        whole = canonical_trace(spec, 1000, 7)
        assert len(whole) == 1000
        # chunk 0 is the monolithic 256-record trace; chunk 1 differs
        # (decorrelated per-chunk seed).
        assert np.array_equal(whole[:256], spec.generate_trace(256, seed=7))
        assert not np.array_equal(whole[256:512], whole[:256])

    def test_generated_source_matches_canonical(self):
        spec = get("mcf")
        whole = canonical_trace(spec, 5_000, 7)
        for chunk_records in (None, 7, 1024):
            source = GeneratedSource(spec, 5_000, 7,
                                     chunk_records=chunk_records)
            assert np.array_equal(np.concatenate(list(source.chunks())),
                                  whole)
        section = GeneratedSource(spec, 5_000, 7).section(1_234, 4_321)
        assert np.array_equal(np.concatenate(list(section.chunks())),
                              whole[1_234:4_321])
        sub = section.section(100, 200)
        assert np.array_equal(np.concatenate(list(sub.chunks())),
                              whole[1_334:1_434])


class TestOnDiskFormat:

    def test_round_trip_hash_and_content(self, tmp_path):
        spec = get("mc80")
        ref = materialize_trace(spec, 2_500, 7, tmp_path / "t")
        header, payload = open_trace(tmp_path / "t")
        assert header["records"] == 2_500
        assert np.array_equal(payload, spec.generate_trace(2_500, seed=7))
        assert verify_trace(tmp_path / "t").digest == ref.digest
        assert read_ref(tmp_path / "t") == ref

    def test_refuses_overwrite_without_force(self, tmp_path):
        spec = get("mcf")
        materialize_trace(spec, 100, 1, tmp_path / "t")
        with pytest.raises(FileExistsError):
            materialize_trace(spec, 100, 1, tmp_path / "t")
        materialize_trace(spec, 200, 2, tmp_path / "t", force=True)
        assert read_ref(tmp_path / "t").records == 200

    def test_force_rewrite_drops_header_before_payload(self, tmp_path,
                                                       monkeypatch):
        # An interrupted --force rewrite must leave an invalid trace
        # (no header), never a stale header over new payload bytes.
        spec = get("mcf")
        materialize_trace(spec, 100, 1, tmp_path / "t")

        from repro.traces import store as store_mod

        def boom(*_args, **_kwargs):
            raise KeyboardInterrupt

        monkeypatch.setattr(np.lib.format, "open_memmap", boom)
        with pytest.raises(KeyboardInterrupt):
            materialize_trace(spec, 100, 2, tmp_path / "t", force=True)
        with pytest.raises(FileNotFoundError, match="not a trace"):
            store_mod.read_header(tmp_path / "t")

    def test_tampered_payload_fails_verification(self, tmp_path):
        spec = get("mcf")
        materialize_trace(spec, 300, 1, tmp_path / "t")
        payload = np.lib.format.open_memmap(tmp_path / "t" / "payload.npy",
                                            mode="r+")
        payload[17] += 4096
        payload.flush()
        del payload
        with pytest.raises(ValueError, match="digest mismatch"):
            verify_trace(tmp_path / "t")

    def test_missing_header_is_a_clean_error(self, tmp_path):
        with pytest.raises(FileNotFoundError, match="not a trace"):
            read_ref(tmp_path / "nope")


# ----------------------------------------------------------------------
class TestStreamedParity60k:
    """Streamed == in-memory at the report scale, every scheme, both
    modes.  The streamed side replays the identical records through
    4096-record chunks (an awkward non-divisor of 60k, so the final
    chunk is partial and hundreds of seams land mid-trace)."""

    @pytest.mark.parametrize("kind,config,_vconfig", SCHEME_CASES)
    def test_native(self, kind, config, _vconfig):
        trace = make_trace(get("mc80"), REPORT_SCALE)
        reference = stats_key(run_native_once(kind, config, trace))
        streamed = stats_key(run_native_once(
            kind, config, ArraySource(trace.copy(), 4096)))
        assert streamed == reference

    @pytest.mark.parametrize("kind,_nconfig,config", SCHEME_CASES)
    def test_virtualized(self, kind, _nconfig, config):
        trace = make_trace(get("mc80"), REPORT_SCALE)
        reference = stats_key(run_virt_once(kind, config, trace))
        streamed = stats_key(run_virt_once(
            kind, config, ArraySource(trace.copy(), 4096)))
        assert streamed == reference


class TestMultiTenantStreamedParity:
    """The quantum scheduler over streamed per-tenant sources == the
    in-memory run, at the report scale on a consolidation mix."""

    MT = MultiTenantSpec(tenants=2, quantum=7_000, switch_policy="asid")

    def test_mix_kv_streamed(self, monkeypatch):
        reference = stats_key(run_native_mt(
            "mix-kv", mt=self.MT, scale=REPORT_SCALE,
            collect_service=True))
        # Force every tenant trace through generated streaming with an
        # execution chunk that is tiny relative to the quantum.
        monkeypatch.setattr(runner_mod, "STREAM_RECORDS", 1_000)
        monkeypatch.setattr(runner_mod, "STREAM_CHUNK_RECORDS", 911)
        streamed = stats_key(run_native_mt(
            "mix-kv", mt=self.MT, scale=REPORT_SCALE,
            collect_service=True))
        assert streamed == reference

    def test_mix_flush_policy_streamed(self, monkeypatch):
        scale = Scale(8_000, 1_500, 7)
        mt = MultiTenantSpec(tenants=2, quantum=900,
                             switch_policy="flush")
        reference = stats_key(run_native_mt("mix-kv", mt=mt, scale=scale))
        monkeypatch.setattr(runner_mod, "STREAM_RECORDS", 100)
        monkeypatch.setattr(runner_mod, "STREAM_CHUNK_RECORDS", 257)
        streamed = stats_key(run_native_mt("mix-kv", mt=mt, scale=scale))
        assert streamed == reference


class TestChunkSizeSweep:
    """Chunk sizes 1, 7 and 4096 on a deliberately streaky trace:
    same-line streaks and the warmup boundary straddle every kind of
    seam (chunk size 1 makes *every* record boundary a seam)."""

    @staticmethod
    def streaky_trace():
        spec = get("mcf")
        base = spec.generate_trace(1_500, seed=3)
        pieces = []
        rng = np.random.default_rng(5)
        cursor = 0
        while cursor < len(base):
            take = int(rng.integers(1, 6))
            streak = int(rng.integers(1, 40))
            pieces.append(np.repeat(base[cursor:cursor + take], streak))
            cursor += take
        return np.concatenate(pieces)[:3_000]

    # warmup 1000 lands mid-streak for this seed; both paths must
    # snapshot the hit counters at exactly that record.
    @pytest.mark.parametrize("chunk_records", (1, 7, 4096))
    @pytest.mark.parametrize("kind,config", (
        ("baseline", cfg.BASELINE), ("asap", cfg.P1_P2)))
    def test_streaky(self, chunk_records, kind, config):
        trace = self.streaky_trace()
        scale = Scale(len(trace), 1_000, 3)
        reference = stats_key(run_native_once(
            kind, config, trace, scale=scale, workload="mcf"))
        streamed = stats_key(run_native_once(
            kind, config, ArraySource(trace.copy(), chunk_records),
            scale=scale, workload="mcf"))
        assert streamed == reference

    @pytest.mark.parametrize("chunk_records", (1, 7, 4096))
    def test_streaky_with_corunner(self, chunk_records):
        # Co-runner simulations replay repeats through the scalar
        # pipeline; seams must not change that path either.
        from repro.sim.runner import _corunner

        trace = self.streaky_trace()
        scale = Scale(len(trace), 1_000, 3)
        spec = get("mcf")

        def run_once(trace_obj):
            process = spec.build_process(seed=scale.seed)
            sim = NativeSimulation(process, corunner=_corunner(scale))
            return sim.run(trace_obj, warmup=scale.warmup,
                           init_order=spec.init_order)

        reference = stats_key(run_once(trace))
        streamed = stats_key(run_once(
            ArraySource(trace.copy(), chunk_records)))
        assert streamed == reference

    def test_warmup_boundary_exactly_on_seam(self):
        trace = self.streaky_trace()
        # A chunk size dividing the warmup puts the measurement start
        # exactly at a chunk boundary.
        scale = Scale(len(trace), 1_000, 3)
        reference = stats_key(run_native_once(
            "baseline", cfg.BASELINE, trace, scale=scale, workload="mcf"))
        streamed = stats_key(run_native_once(
            "baseline", cfg.BASELINE, ArraySource(trace.copy(), 500),
            scale=scale, workload="mcf"))
        assert streamed == reference


# ----------------------------------------------------------------------
class TestStreamingPopulateOrder:

    @pytest.mark.parametrize("order", ("sequential", "demand", "chunked"))
    def test_matches_monolithic(self, order):
        rng = np.random.default_rng(11)
        vpns = rng.integers(0, 5_000, size=20_000, dtype=np.int64)
        whole = first_touch_order(vpns, order)
        for chunk_records in (1, 13, 4096):
            chunks = [vpns[i:i + chunk_records]
                      for i in range(0, len(vpns), chunk_records)]
            assert np.array_equal(
                streaming_first_touch_order(chunks, order), whole)

    def test_empty(self):
        for order in ("sequential", "demand", "chunked"):
            assert len(streaming_first_touch_order([], order)) == 0


# ----------------------------------------------------------------------
class TestJobTraceRef:

    def make_ref(self, tmp_path, records=2_000, seed=7, workload="mc80"):
        return materialize_trace(get(workload), records, seed,
                                 tmp_path / "trace")

    def test_replay_matches_generated_job(self, tmp_path):
        ref = self.make_ref(tmp_path)
        scale = Scale(2_000, 400, 7)
        plain = Job(kind="native", workload="mc80", scale=scale)
        replay = Job(kind="native", workload="mc80", scale=scale,
                     trace=ref)
        assert replay.spec_hash() != plain.spec_hash()
        assert stats_key(execute_job(replay)) == stats_key(
            execute_job(plain))

    def test_engine_runs_trace_jobs_deterministically(self, tmp_path):
        from repro.experiments import scaling

        ref = self.make_ref(tmp_path)
        jobs = scaling.jobs_for_trace(ref)
        serial = Engine(jobs=1).run_jobs(jobs)
        parallel = Engine(jobs=2).run_jobs(jobs)
        for job in jobs:
            assert stats_key(serial[job]) == stats_key(parallel[job])

    def test_geometry_validation(self, tmp_path):
        ref = self.make_ref(tmp_path)
        with pytest.raises(ValueError, match="records"):
            Job(kind="native", workload="mc80",
                scale=Scale(3_000, 400, 7), trace=ref)
        with pytest.raises(ValueError, match="VMA layout"):
            Job(kind="native", workload="mcf",
                scale=Scale(2_000, 400, 7), trace=ref)
        with pytest.raises(ValueError, match="multi_tenant"):
            Job(kind="native", workload="mc80",
                scale=Scale(2_000, 400, 7), trace=ref,
                multi_tenant=MultiTenantSpec(tenants=2, quantum=500))

    def test_content_change_is_detected_at_execution(self, tmp_path):
        ref = self.make_ref(tmp_path)
        job = Job(kind="native", workload="mc80",
                  scale=Scale(2_000, 400, 7), trace=ref)
        stale = dataclasses.replace(ref, digest="0" * 64)
        with pytest.raises(ValueError, match="content changed"):
            execute_job(dataclasses.replace(job, trace=stale))

    def test_unknown_workload_rejected_at_spec_time(self):
        with pytest.raises(ValueError, match="unknown workload"):
            Job(kind="native", workload="nope")
        with pytest.raises(ValueError, match="multi-tenant mix"):
            Job(kind="native", workload="mix-nope",
                multi_tenant=MultiTenantSpec(tenants=2, quantum=100))


# ----------------------------------------------------------------------
class TestDegenerateParameters:

    def test_scale_rejects_empty_and_all_warmup(self):
        with pytest.raises(ValueError, match="trace_length"):
            Scale(trace_length=0)
        with pytest.raises(ValueError, match="warmup"):
            Scale(trace_length=100, warmup=-1)
        with pytest.raises(ValueError, match="nothing would be measured"):
            Scale(trace_length=100, warmup=100)

    def test_generate_trace_rejects_empty(self):
        with pytest.raises(ValueError, match="trace length"):
            get("mcf").generate_trace(0, seed=1)

    def test_keyvalue_validates_and_sizes_exactly(self):
        with pytest.raises(ValueError, match="value_run"):
            KeyValue(value_run=0)
        with pytest.raises(ValueError, match="hash_fraction"):
            KeyValue(hash_fraction=0.0)
        rng = np.random.default_rng(1)
        for value_run in (1, 3):
            for size in (1, 2, 5, 97, 100):
                # sizes not divisible by per_request = 1 + value_run
                out = KeyValue(value_run=value_run).generate(
                    rng, 1_000, size)
                assert len(out) == size
                assert out.min() >= 0 and out.max() < 1_000

    def test_materialize_rejects_empty(self, tmp_path):
        with pytest.raises(ValueError, match="at least one record"):
            materialize_trace(get("mcf"), 0, 1, tmp_path / "t")


# ----------------------------------------------------------------------
class TestStreamedRunnerThreshold:

    def test_long_scales_stream(self, monkeypatch):
        monkeypatch.setattr(runner_mod, "STREAM_RECORDS", 1_000)
        source = make_trace(get("mcf"), Scale(2_000, 400, 7))
        assert isinstance(source, GeneratedSource)
        assert source.records == 2_000

    def test_streamed_run_matches_monolithic(self, monkeypatch):
        scale = Scale(5_000, 1_000, 7)
        reference = stats_key(runner_mod.run_native("mcf", scale=scale))
        monkeypatch.setattr(runner_mod, "STREAM_RECORDS", 500)
        monkeypatch.setattr(runner_mod, "STREAM_CHUNK_RECORDS", 333)
        streamed = stats_key(runner_mod.run_native("mcf", scale=scale))
        assert streamed == reference

    def test_gen_chunk_constant_unchanged(self):
        # Content-defining constant: changing it silently redefines
        # every multi-chunk trace.  Bump FORMAT_VERSION with it.
        assert GEN_CHUNK_RECORDS == 1 << 20
