"""Integration tests: the native simulator end to end."""

import pytest

from repro.core import config as cfg
from repro.sim.runner import Scale, make_trace, run_native
from repro.sim.simulator import NativeSimulation, build_native_descriptors
from repro.workloads.corunner import Corunner
from repro.workloads.suite import get

SCALE = Scale(trace_length=6_000, warmup=1_000, seed=7)


@pytest.fixture(scope="module")
def mc80_baseline():
    return run_native("mc80", cfg.BASELINE, scale=SCALE)


@pytest.fixture(scope="module")
def mc80_asap():
    return run_native("mc80", cfg.P1_P2, scale=SCALE)


class TestBasicInvariants:
    def test_accesses_match_measured_window(self, mc80_baseline):
        assert mc80_baseline.accesses == SCALE.trace_length - SCALE.warmup

    def test_cycle_decomposition(self, mc80_baseline):
        stats = mc80_baseline
        assert stats.cycles == (stats.base_cycles + stats.data_cycles
                                + stats.walk_cycles)

    def test_walks_do_not_exceed_accesses(self, mc80_baseline):
        assert 0 < mc80_baseline.walks <= mc80_baseline.accesses

    def test_walk_latency_has_floor(self, mc80_baseline):
        # A walk costs at least the PWC probe + one L1 access.
        assert mc80_baseline.avg_walk_latency >= 6

    def test_service_distribution_covers_all_levels(self, mc80_baseline):
        for pt_level in (4, 3, 2, 1):
            assert mc80_baseline.service.total(pt_level) == \
                mc80_baseline.walks


class TestAsapEffect:
    def test_asap_reduces_walk_latency(self, mc80_baseline, mc80_asap):
        assert mc80_asap.avg_walk_latency < mc80_baseline.avg_walk_latency

    def test_asap_does_not_change_walk_count(self, mc80_baseline,
                                             mc80_asap):
        # ASAP accelerates walks; it must not change how many happen.
        assert mc80_asap.walks == mc80_baseline.walks

    def test_prefetches_are_issued_and_useful(self, mc80_asap):
        assert mc80_asap.prefetches_issued > 0
        assert mc80_asap.prefetches_useful > 0
        assert (mc80_asap.prefetches_useful
                <= mc80_asap.prefetches_issued)

    def test_p1_config_requires_layout(self):
        spec = get("mcf")
        process = spec.build_process()  # no ASAP layout
        with pytest.raises(ValueError):
            NativeSimulation(process, asap=cfg.P1)

    def test_p1p2_at_least_as_good_as_p1(self):
        p1 = run_native("mc400", cfg.P1, scale=SCALE)
        p12 = run_native("mc400", cfg.P1_P2, scale=SCALE)
        assert p12.avg_walk_latency <= p1.avg_walk_latency * 1.02


class TestScenarios:
    def test_colocation_increases_walk_latency(self, mc80_baseline):
        coloc = run_native("mc80", cfg.BASELINE, colocated=True,
                           scale=SCALE)
        assert coloc.avg_walk_latency > mc80_baseline.avg_walk_latency

    def test_infinite_tlb_kills_all_walks(self, mc80_baseline):
        infinite = run_native("mc80", cfg.BASELINE, infinite_tlb=True,
                              scale=SCALE)
        assert infinite.walks == 0
        assert infinite.cycles < mc80_baseline.cycles

    def test_clustered_tlb_reduces_walks(self, mc80_baseline):
        clustered = run_native("mcf", cfg.BASELINE, clustered_tlb=True,
                               scale=SCALE)
        plain = run_native("mcf", cfg.BASELINE, scale=SCALE)
        assert clustered.walks < plain.walks

    def test_five_level_pt_adds_walk_work(self):
        # Every walk now visits a fifth level (mostly hidden by PWC/L1,
        # §3.5) — it must show in the service records, and it cannot make
        # walks meaningfully faster.
        four = run_native("mc400", cfg.BASELINE, scale=SCALE, pt_levels=4)
        five = run_native("mc400", cfg.BASELINE, scale=SCALE, pt_levels=5)
        assert five.service.total(5) == five.walks
        assert five.avg_walk_latency >= 0.98 * four.avg_walk_latency


class TestDescriptors:
    def test_descriptors_cover_largest_vmas(self):
        spec = get("mc80")
        process = spec.build_process(asap_levels=(1, 2))
        descriptors = build_native_descriptors(process, 16)
        assert len(descriptors) >= 6  # the six slabs
        covered = sum(d.end - d.start for d in descriptors)
        assert covered > 0.98 * spec.footprint_bytes

    def test_trace_cache_reuses_arrays(self):
        spec = get("mcf")
        a = make_trace(spec, SCALE)
        b = make_trace(spec, SCALE)
        assert a is b


class TestDeterminism:
    def test_same_seed_same_stats(self):
        a = run_native("canneal", cfg.P1_P2, scale=SCALE)
        b = run_native("canneal", cfg.P1_P2, scale=SCALE)
        assert a.walk_cycles == b.walk_cycles
        assert a.cycles == b.cycles

    def test_corunner_is_deterministic(self):
        spec = get("canneal")
        trace = make_trace(spec, SCALE)
        runs = []
        for _ in range(2):
            sim = NativeSimulation(
                spec.build_process(seed=SCALE.seed),
                corunner=Corunner(seed=5, intensity=2),
            )
            runs.append(sim.run(trace, warmup=SCALE.warmup).walk_cycles)
        assert runs[0] == runs[1]
