"""Unit tests for the page-table geometry helpers."""

import pytest

from repro.pagetable import constants as c


def test_level_shifts_match_figure1():
    # Figure 1: 48-bit VA = 9+9+9+9 index bits + 12 offset bits.
    assert c.level_shift(1) == 12
    assert c.level_shift(2) == 21
    assert c.level_shift(3) == 30
    assert c.level_shift(4) == 39
    assert c.level_shift(5) == 48


def test_level_index_extracts_nine_bits():
    va = (0b101010101 << 39) | (0b111111111 << 30) | (3 << 21) | (7 << 12)
    assert c.level_index(va, 4) == 0b101010101
    assert c.level_index(va, 3) == 0b111111111
    assert c.level_index(va, 2) == 3
    assert c.level_index(va, 1) == 7


def test_level_index_bounds():
    for level in (1, 2, 3, 4):
        assert 0 <= c.level_index(0xFFFF_FFFF_FFFF, level) < 512


def test_node_tag_groups_addresses_sharing_a_node():
    va1 = 0x1000_0000
    va2 = va1 + 511 * c.PAGE_SIZE  # same PL1 node iff same va >> 21
    if (va1 >> 21) == (va2 >> 21):
        assert c.node_tag(va1, 1) == c.node_tag(va2, 1)
    va3 = va1 + (1 << 21)
    assert c.node_tag(va1, 1) != c.node_tag(va3, 1)


def test_pages_mapped_by_level():
    assert c.pages_mapped_by(1) == 1
    assert c.pages_mapped_by(2) == 512
    assert c.pages_mapped_by(3) == 512 * 512


def test_entry_phys_addr():
    assert c.entry_phys_addr(0x1000, 0) == 0x1000
    assert c.entry_phys_addr(0x1000, 511) == 0x1000 + 511 * 8
    with pytest.raises(ValueError):
        c.entry_phys_addr(0x1000, 512)


def test_large_page_geometry():
    assert c.LARGE_PAGE_SIZE == 2 * 1024 * 1024
    assert c.NODE_BYTES == c.PAGE_SIZE
    assert c.ENTRIES_PER_NODE == 512


def test_line_of():
    assert c.line_of(0) == 0
    assert c.line_of(63) == 0
    assert c.line_of(64) == 1


def test_level_validation():
    with pytest.raises(ValueError):
        c.level_shift(0)
