"""Tests for the parallel experiment runtime (repro.runtime).

Covers the acceptance-critical properties: job specs hash stably, the
cache hits/misses/invalidates correctly, parallel execution is
byte-identical to serial, and the ``repro sweep`` CLI runs end to end.
"""

import pickle

import pytest

from repro.cli import main
from repro.core.config import BASELINE, P1_P2
from repro.experiments import fig8, report, table2
from repro.runtime import (
    NATIVE,
    PT_INVENTORY,
    VIRTUALIZED,
    Engine,
    Job,
    ResultCache,
    Sweep,
    code_version,
    execute_job,
)
from repro.sim.runner import Scale, run_native

TINY = Scale(trace_length=2_000, warmup=400, seed=13)


def _job(**overrides) -> Job:
    spec = dict(kind=NATIVE, workload="mcf", config=BASELINE, scale=TINY)
    spec.update(overrides)
    return Job(**spec)


class TestJob:
    def test_rejects_unknown_kind(self):
        with pytest.raises(ValueError):
            Job(kind="bogus", workload="mcf")

    def test_rejects_knobs_the_executor_would_ignore(self):
        with pytest.raises(ValueError):
            Job(kind=VIRTUALIZED, workload="mcf", clustered_tlb=True)
        with pytest.raises(ValueError):
            Job(kind=VIRTUALIZED, workload="mcf", pt_levels=5)
        with pytest.raises(ValueError):
            Job(kind=NATIVE, workload="mcf", host_page_level=2)
        with pytest.raises(ValueError):  # holes need an ASAP layout
            Job(kind=NATIVE, workload="mcf", config=BASELINE,
                hole_rate=0.2)
        with pytest.raises(ValueError):
            Job(kind=PT_INVENTORY, workload="mcf", colocated=True)
        with pytest.raises(ValueError):
            Job(kind=PT_INVENTORY, workload="mcf", config=P1_P2)

    def test_spec_hash_stable_and_sensitive(self):
        assert _job().spec_hash() == _job().spec_hash()
        assert _job().spec_hash() != _job(colocated=True).spec_hash()
        assert _job().spec_hash() != _job(config=P1_P2).spec_hash()
        assert (_job().spec_hash()
                != _job(scale=Scale(2_000, 400, 14)).spec_hash())

    def test_equal_specs_dedupe(self):
        sweep = Sweep.build("s", [_job(), _job(colocated=True)], [_job()])
        assert len(sweep) == 3
        assert len(sweep.unique_jobs()) == 2
        assert sweep.duplicates == 1

    def test_label_mentions_knobs(self):
        label = _job(clustered_tlb=True, pt_levels=5).label()
        assert "mcf" in label and "ctlb" in label and "5L" in label

    def test_execute_matches_direct_runner(self):
        via_job = execute_job(_job(config=P1_P2))
        direct = run_native("mcf", P1_P2, scale=TINY,
                            collect_service=False)
        assert via_job.walk_cycles == direct.walk_cycles
        assert via_job.prefetches_issued == direct.prefetches_issued

    def test_pt_inventory_kind(self):
        inventory = execute_job(Job(kind=PT_INVENTORY, workload="mcf",
                                    scale=TINY))
        assert inventory["vmas_for_99pct"] <= inventory["total_vmas"]
        assert inventory["pt_page_count"] > 0

    def test_stats_pickle_roundtrip(self):
        stats = execute_job(_job(collect_service=True))
        clone = pickle.loads(pickle.dumps(stats))
        assert clone.walk_cycles == stats.walk_cycles
        assert clone.service.fractions(1) == stats.service.fractions(1)


class TestCache:
    def test_miss_then_hit(self, tmp_path):
        engine = Engine(jobs=1, cache=ResultCache(tmp_path))
        first = engine.run_jobs([_job()])
        assert engine.last_report.executed == 1
        assert engine.last_report.cache_hits == 0
        second = engine.run_jobs([_job()])
        assert engine.last_report.executed == 0
        assert engine.last_report.cache_hits == 1
        assert second[_job()].walk_cycles == first[_job()].walk_cycles

    def test_code_version_invalidates(self, tmp_path):
        warm = Engine(jobs=1, cache=ResultCache(tmp_path, version="v1"))
        warm.run_jobs([_job()])
        other = Engine(jobs=1, cache=ResultCache(tmp_path, version="v2"))
        other.run_jobs([_job()])
        assert other.last_report.executed == 1

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        engine = Engine(jobs=1, cache=cache)
        engine.run_jobs([_job()])
        cache._path(_job()).write_bytes(b"not a pickle")
        engine.run_jobs([_job()])
        assert engine.last_report.executed == 1

    def test_code_version_is_stable_hex(self):
        assert code_version() == code_version()
        int(code_version(), 16)


class TestEngine:
    def test_map_preserves_order(self):
        jobs = [_job(), _job(config=P1_P2)]
        base, asap = Engine(jobs=1).map(jobs)
        assert asap.avg_walk_latency < base.avg_walk_latency

    def test_dedup_executes_once(self):
        engine = Engine(jobs=1)
        engine.run_jobs([_job(), _job(), _job()])
        assert engine.last_report.executed == 1
        assert engine.last_report.deduplicated == 2

    def test_parallel_identical_to_serial(self):
        jobs = [
            _job(),
            _job(config=P1_P2),
            _job(kind=VIRTUALIZED),
            Job(kind=PT_INVENTORY, workload="mcf", scale=TINY),
        ]
        serial = Engine(jobs=1).run_jobs(jobs)
        parallel = Engine(jobs=4).run_jobs(jobs)
        for job in jobs[:3]:
            assert parallel[job].walk_cycles == serial[job].walk_cycles
            assert parallel[job].cycles == serial[job].cycles
        assert parallel[jobs[3]] == serial[jobs[3]]

    def test_experiment_tables_identical_serial_vs_parallel(self):
        serial = [t.render() for t in fig8.run(TINY, Engine(jobs=1))]
        parallel = [t.render() for t in fig8.run(TINY, Engine(jobs=4))]
        assert serial == parallel

    def test_rejects_bad_worker_count(self):
        with pytest.raises(ValueError):
            Engine(jobs=0)


class TestSweepReport:
    def test_counters_and_summary(self, tmp_path):
        engine = Engine(jobs=1, cache=ResultCache(tmp_path))
        engine.run_jobs([_job()])
        engine.run_jobs([_job(), _job(), _job(config=P1_P2)])
        rep = engine.last_report
        assert rep.cache_hits == 1
        assert rep.executed == 1
        assert rep.deduplicated == 1
        assert "1 cached" in rep.summary()
        assert rep.slowest()[0].job == _job(config=P1_P2)


class TestReportSweep:
    def test_sweep_jobs_deduplicates_across_experiments(self):
        sweep = report.sweep_jobs(TINY)
        assert len(sweep) > len(sweep.unique_jobs())

    def test_select_unknown_raises(self):
        with pytest.raises(ValueError):
            report.sweep_jobs(TINY, only=["fig99"])

    def test_table2_via_sweep_matches_run(self):
        engine = Engine(jobs=1)
        results = engine.run_jobs(table2.jobs(TINY))
        assert (table2.tables(results, TINY).render()
                == table2.run(TINY).render())


class TestSweepCli:
    def test_sweep_smoke(self, tmp_path, capsys):
        code = main(["sweep", "--only", "table2", "--trace-length", "2000",
                     "--jobs", "2", "--cache-dir", str(tmp_path)])
        assert code == 0
        out = capsys.readouterr().out
        assert "Table 2" in out
        assert "[sweep]" in out

    def test_sweep_cached_rerun(self, tmp_path, capsys):
        argv = ["sweep", "--only", "table2", "--trace-length", "2000",
                "--cache-dir", str(tmp_path)]
        assert main(argv) == 0
        first = capsys.readouterr().out
        assert main(argv) == 0
        second = capsys.readouterr().out
        assert "7 cached" in second
        assert first.splitlines()[:-1] == second.splitlines()[:-1]

    def test_sweep_unknown_experiment(self, capsys):
        assert main(["sweep", "--only", "fig99", "--no-cache"]) == 2
