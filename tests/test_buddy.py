"""Unit tests for the buddy-allocator model."""

import pytest

from repro.kernelsim.buddy import BuddyAllocator, OutOfMemoryError
from repro.kernelsim.phys import PhysicalMemory


def make(seed=0, mean_run=8.0):
    return BuddyAllocator(PhysicalMemory(1 << 38), seed=seed,
                          default_mean_run=mean_run)


def test_frames_are_unique():
    buddy = make()
    frames = buddy.alloc_frames(10_000)
    assert len(set(frames)) == 10_000


def test_pools_do_not_interleave_within_runs():
    buddy = make(mean_run=1000.0)
    a = [buddy.alloc_frame("a") for _ in range(5)]
    b = [buddy.alloc_frame("b") for _ in range(5)]
    # Each pool's frames are consecutive within its own run.
    assert a == list(range(a[0], a[0] + 5))
    assert b == list(range(b[0], b[0] + 5))
    assert set(a).isdisjoint(b)


def test_mean_run_controls_contiguity():
    def region_count(mean_run):
        buddy = make(seed=3, mean_run=mean_run)
        frames = sorted(buddy.alloc_frames(2000))
        return 1 + sum(1 for x, y in zip(frames, frames[1:]) if y != x + 1)

    fragmented = region_count(2.0)
    healthy = region_count(64.0)
    assert fragmented > healthy * 3


def test_break_run_forces_discontinuity():
    buddy = make(mean_run=1000.0)
    first = buddy.alloc_frame()
    buddy.break_run()
    second = buddy.alloc_frame()
    assert second != first + 1


def test_aligned_run_allocation():
    buddy = make()
    base = buddy.alloc_run(512, aligned=True)
    assert base % 512 == 0
    other = buddy.alloc_run(512, aligned=True)
    assert other % 512 == 0
    assert other != base


def test_runs_pack_within_slots():
    buddy = make()
    bases = [buddy.alloc_run(512, pool="large") for _ in range(8)]
    # A 4096-frame slot holds eight 512-frame runs.
    assert max(bases) - min(bases) == 7 * 512


def test_alloc_run_validation():
    buddy = make()
    with pytest.raises(ValueError):
        buddy.alloc_run(0)
    with pytest.raises(ValueError):
        buddy.alloc_run(5000)
    with pytest.raises(ValueError):
        buddy.alloc_run(100, aligned=True)  # not a power of two


def test_reservations_do_not_overlap_pools():
    buddy = make()
    base = buddy.reserve_contiguous(100_000)
    frames = set(buddy.alloc_frames(5000))
    reserved = set(range(base, base + 100_000))
    assert frames.isdisjoint(reserved)


def test_reservations_are_contiguous_and_distinct():
    buddy = make()
    a = buddy.reserve_contiguous(1000)
    b = buddy.reserve_contiguous(1000)
    assert abs(a - b) >= 1000


def test_reservation_alignment():
    buddy = make()
    base = buddy.reserve_contiguous(100, align=512)
    assert base % 512 == 0


def test_extension_consumes_headroom_then_fails():
    buddy = make()
    base = buddy.reserve_contiguous(10, headroom=5)
    assert buddy.try_extend(base, 3)
    assert buddy.try_extend(base, 2)
    assert not buddy.try_extend(base, 1)
    assert buddy.reservation_size(base) == 15
    assert buddy.stats.extensions_failed == 1


def test_reservation_exhaustion_raises():
    buddy = BuddyAllocator(PhysicalMemory(1 << 24), seed=0)  # 4096 frames
    with pytest.raises(OutOfMemoryError):
        buddy.reserve_contiguous(10_000)


def test_deterministic_with_seed():
    a = make(seed=7).alloc_frames(100)
    b = make(seed=7).alloc_frames(100)
    assert a == b


def test_configure_pool_validation():
    buddy = make()
    with pytest.raises(ValueError):
        buddy.configure_pool("x", 0.5)
