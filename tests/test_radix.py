"""Unit tests for the radix page table and walk paths."""

import pytest

from repro.pagetable import constants as c
from repro.pagetable.radix import PageFault, RadixPageTable

VA = 0x5555_0000_0000


def test_root_exists_at_creation():
    pt = RadixPageTable()
    assert pt.node_count() == 1
    assert pt.node_count(4) == 1


def test_map_and_lookup_small_page():
    pt = RadixPageTable()
    pt.map_page(VA, frame=777)
    assert pt.lookup(VA) == (777, 1)
    assert pt.lookup(VA + 100) == (777, 1)  # same page
    assert pt.lookup(VA + c.PAGE_SIZE) is None


def test_map_creates_interior_nodes_once():
    pt = RadixPageTable()
    created = pt.map_page(VA, frame=1)
    assert [lvl for lvl, _, _ in created] == [3, 2, 1]
    created = pt.map_page(VA + c.PAGE_SIZE, frame=2)
    assert created == []  # same PL1 node covers both pages
    assert pt.node_count() == 4  # root + PL3 + PL2 + PL1


def test_walk_path_structure():
    pt = RadixPageTable()
    pt.map_page(VA, frame=42)
    path = pt.walk_path(VA)
    assert [s.level for s in path.steps] == [4, 3, 2, 1]
    assert path.frame == 42
    assert path.leaf_level == 1
    assert not path.is_large


def test_walk_path_entry_addresses_are_within_nodes():
    pt = RadixPageTable()
    pt.map_page(VA, frame=42)
    for step in pt.walk_path(VA).steps:
        offset = step.entry_addr % c.NODE_BYTES
        assert offset == c.level_index(VA, step.level) * c.ENTRY_BYTES


def test_adjacent_pages_share_pl1_line():
    # Eight consecutive pages have PTEs in one 64-byte line — the property
    # both PT-walk locality and Clustered TLB coalescing rely on.
    pt = RadixPageTable()
    base = VA & ~(8 * c.PAGE_SIZE - 1)
    for i in range(8):
        pt.map_page(base + i * c.PAGE_SIZE, frame=100 + i)
    lines = {pt.walk_path(base + i * c.PAGE_SIZE).steps[-1].line
             for i in range(8)}
    assert len(lines) == 1


def test_unmapped_lookup_raises_on_walk():
    pt = RadixPageTable()
    with pytest.raises(PageFault):
        pt.walk_path(VA)


def test_large_page_mapping():
    pt = RadixPageTable()
    base = VA & ~(c.LARGE_PAGE_SIZE - 1)
    pt.map_page(base, frame=512 * 9, leaf_level=2)
    frame, leaf = pt.lookup(base + 5 * c.PAGE_SIZE)
    assert leaf == 2
    assert frame == 512 * 9 + 5  # frame within the large page
    path = pt.walk_path(base)
    assert [s.level for s in path.steps] == [4, 3, 2]
    assert path.is_large


def test_large_page_requires_alignment():
    pt = RadixPageTable()
    with pytest.raises(ValueError):
        pt.map_page(VA & ~(c.LARGE_PAGE_SIZE - 1), frame=7, leaf_level=2)


def test_five_level_tree():
    pt = RadixPageTable(levels=5)
    va = 1 << 52  # needs the fifth level
    pt.map_page(va, frame=3)
    path = pt.walk_path(va)
    assert [s.level for s in path.steps] == [5, 4, 3, 2, 1]


def test_invalid_level_count():
    with pytest.raises(ValueError):
        RadixPageTable(levels=3)


def test_fault_path_missing_everything_below_root():
    pt = RadixPageTable()
    fault = pt.fault_path(VA)
    # Only the root exists; its entry is readable, the PL3 node is missing.
    assert [s.level for s in fault.resolved_steps] == [4]
    assert fault.missing_level == 3


def test_fault_path_with_sibling_mapping():
    pt = RadixPageTable()
    pt.map_page(VA, frame=1)
    # A page in the same PL1 node but unmapped: all nodes exist, the PTE
    # slot is empty.
    fault = pt.fault_path(VA + c.PAGE_SIZE)
    assert [s.level for s in fault.resolved_steps] == [4, 3, 2, 1]
    assert fault.missing_level == 0


def test_fault_path_rejects_mapped_addresses():
    pt = RadixPageTable()
    pt.map_page(VA, frame=1)
    with pytest.raises(ValueError):
        pt.fault_path(VA)


def test_unmap_page():
    pt = RadixPageTable()
    pt.map_page(VA, frame=1)
    assert pt.unmap_page(VA)
    assert pt.lookup(VA) is None
    assert not pt.unmap_page(VA)


def test_cluster_frames():
    pt = RadixPageTable()
    vpn = (VA >> c.PAGE_SHIFT) & ~7
    pt.map_page(vpn << c.PAGE_SHIFT, frame=50)
    pt.map_page((vpn + 3) << c.PAGE_SHIFT, frame=53)
    frames = pt.cluster_frames(vpn + 1)
    assert frames[0] == 50
    assert frames[3] == 53
    assert frames[1] is None


def test_mapped_pages_counts_large_as_512():
    pt = RadixPageTable()
    pt.map_page(VA, frame=1)
    base = (VA + (1 << 30)) & ~(c.LARGE_PAGE_SIZE - 1)
    pt.map_page(base, frame=1024, leaf_level=2)
    assert pt.mapped_pages == 1 + 512


def test_node_placer_receives_level_and_tag():
    seen = []

    def placer(level, tag):
        seen.append((level, tag))
        return (len(seen) + 1000) * c.NODE_BYTES

    pt = RadixPageTable(node_placer=placer)
    pt.map_page(VA, frame=1)
    levels = [lvl for lvl, _ in seen]
    assert levels == [4, 3, 2, 1]  # root first, then the fault path
