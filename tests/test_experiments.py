"""Smoke + shape tests for the experiment modules (tiny scale).

These verify that every table/figure module runs end to end and produces
the paper's qualitative shape; the benchmarks assert the same at a larger
scale.
"""

import pytest

from repro.experiments import (
    ablations,
    fig2,
    fig3,
    fig8,
    fig9,
    fig10,
    fig11,
    fig12,
    table1,
    table2,
    table6,
)
from repro.experiments.common import ExperimentTable, mean, reduction
from repro.sim.runner import Scale

TINY = Scale(trace_length=3_000, warmup=600, seed=13)


class TestCommon:
    def test_reduction(self):
        assert reduction(100, 80) == pytest.approx(20.0)
        assert reduction(0, 10) == 0.0

    def test_mean(self):
        assert mean([1.0, 3.0]) == 2.0
        assert mean([]) == 0.0

    def test_table_render_and_accessors(self):
        table = ExperimentTable(title="T", columns=["a", "b"])
        table.add_row(a="x", b=1.5)
        table.add_row(a="y", b=2)
        text = table.render()
        assert "T" in text and "1.50" in text
        assert table.column("b") == [1.5, 2]
        assert table.row_by("a", "y")["b"] == 2
        with pytest.raises(KeyError):
            table.row_by("a", "zzz")


class TestTable2:
    def test_structure_and_shape(self):
        table = table2.run(TINY)
        assert len(table.rows) == 7
        for row in table.rows:
            assert row["vmas_for_99pct"] <= row["total_vmas"]
            assert row["pt_page_count"] > row["contig_phys_regions"]

    def test_pt_pages_track_footprint(self):
        table = table2.run(TINY)
        mc80 = table.row_by("application", "mc80")
        mc400 = table.row_by("application", "mc400")
        assert 4 < mc400["pt_page_count"] / mc80["pt_page_count"] < 6


class TestTable1:
    def test_orderings(self):
        table = table1.run(TINY)
        norm = {row["scenario"]: row["normalised"] for row in table.rows}
        assert norm["native 80GB (reference)"] == pytest.approx(1.0)
        assert norm["virtualization"] > 1.2
        assert (norm["virtualization + SMT colocation"]
                >= norm["virtualization"])


class TestFig2Fig3:
    def test_fig2_fractions_bounded(self):
        table = fig2.run(TINY)
        for row in table.rows:
            for column in table.columns[1:]:
                assert 0 <= row[column] <= 100

    def test_fig3_virtualization_dominates(self):
        table = fig3.run(TINY)
        avg = table.row_by("workload", "Average")
        assert avg["virtualized"] > avg["native"]


class TestFig8:
    def test_asap_always_helps(self):
        isolation, colocation = fig8.run(TINY)
        for table in (isolation, colocation):
            for row in table.rows:
                assert row["P1"] <= row["Baseline"]
                assert row["P1+P2"] <= row["P1"] * 1.05


class TestFig9:
    def test_four_panels_with_full_rows(self):
        panels = fig9.run(TINY)
        assert len(panels) == 4
        for panel in panels:
            for row in panel.rows:
                total = sum(row[c] for c in panel.columns[1:])
                assert total == pytest.approx(100.0, abs=0.1)


class TestFig10:
    def test_ladder_monotone_on_average(self):
        isolation, _ = fig10.run(TINY)
        avg = isolation.row_by("workload", "Average")
        assert avg["P1g+P1h+P2g+P2h"] < avg["Baseline"]
        assert avg["P1g"] < avg["Baseline"]


class TestTable6:
    def test_improvement_is_product(self):
        table = table6.run(TINY)
        for row in table.rows[:-1]:
            expected = (row["critical_path_%"]
                        * row["asap_reduction_%"] / 100.0)
            assert row["min_improvement_%"] == pytest.approx(expected)


class TestFig11:
    def test_combination_at_least_asap(self):
        fig, tab7 = fig11.run(TINY)
        avg = fig.row_by("workload", "Average")
        assert avg["Clustered+ASAP_%"] >= avg["ASAP_%"] - 2.0
        assert len(tab7.rows) == 8  # 7 workloads + average


class TestFig12:
    def test_asap_helps_with_large_host_pages(self):
        table = fig12.run(TINY)
        avg = table.row_by("workload", "Average")
        assert avg["ASAP"] < avg["Baseline"]


class TestAblations:
    def test_pwc_scaling_buys_little(self):
        table = ablations.run_pwc_scaling(TINY)
        avg = table.row_by("workload", "Average")
        assert avg["red_%"] < 15.0

    def test_five_level_recovers(self):
        table = ablations.run_five_level(TINY)
        for row in table.rows:
            assert row["5L_P1+P2+P3"] < row["5L_base"]

    def test_holes_degrade_gracefully(self):
        table = ablations.run_holes(TINY)
        useful = [row["useful_prefetch_%"] for row in table.rows]
        assert useful[0] > useful[-1]


class TestMultiTenant:
    @pytest.fixture(scope="class")
    def tables(self):
        from repro.experiments import mt
        # seeds=1: the replicate axis has its own tests
        # (test_replication); this class checks table shape cheaply.
        return mt.run(Scale(trace_length=1_500, warmup=300, seed=13),
                      seeds=1)

    def test_structure(self, tables):
        native, virt, retention = tables
        assert native.columns[0] == "scenario"
        assert [row["scenario"] for row in native.rows][0] == "isolated"
        # 1 isolated row + tenants x quanta x policies grid rows.
        assert len(native.rows) == 1 + 2 * 2 * 2
        assert len(virt.rows) == 1 + 1 * 1 * 2
        assert {row["scheme"] for row in retention.rows} \
            == {"baseline", "asap", "victima", "revelator"}

    def test_fractions_bounded(self, tables):
        native, virt, _ = tables
        for table in (native, virt):
            for row in table.rows:
                for key, value in row.items():
                    if key != "scenario":
                        assert 0.0 <= value <= 100.0

    def test_consolidation_raises_translation_pressure(self, tables):
        native, _, _ = tables
        isolated = native.row_by("scenario", "isolated")
        consolidated = [row for row in native.rows
                        if row["scenario"] != "isolated"]
        for name in ("baseline", "asap"):
            worst = max(row[name] for row in consolidated)
            assert worst > isolated[name]

    def test_retention_never_loses_badly(self, tables):
        """ASID retention's delta over flushing may be small but must
        not be a regression beyond noise."""
        _, _, retention = tables
        for row in retention.rows:
            assert row["native_mean"] > -1.0

    def test_cells_shared_with_compare(self):
        from repro.experiments import compare, mt
        scale = Scale(trace_length=1_500, warmup=300, seed=13)
        shared = set(mt.jobs(scale, seeds=1)) \
            & set(compare.jobs(scale, seeds=1))
        # Every single-tenant reference cell is value-equal to a
        # compare cell, so a sweep executes them once for both.
        assert len(shared) >= 16
