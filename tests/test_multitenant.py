"""Multi-tenant subsystem: parity, isolation, scheduling, Job plumbing.

The acceptance anchor is golden-pinned single-tenant parity: a
multi-tenant run with one process and no switching must produce
byte-identical SimStats to the plain simulators for every scheme.  The
goldens below are the same tuples test_fast_path.py pins against the
pre-rewrite simulators, so the chain cold-path -> fast-path ->
multi-tenant is closed end to end.
"""

import numpy as np
import pytest

from repro.core import config as cfg
from repro.runtime.job import NATIVE, PT_INVENTORY, Job
from repro.schemes import SchemeSpec
from repro.sim.multitenant import (
    MultiTenantSpec,
    round_robin_schedule,
    run_native_mt,
    run_virtualized_mt,
    tenant_seed,
)
from repro.sim.runner import Scale, run_native, run_virtualized
from repro.tlb.hierarchy import TlbHierarchy
from repro.tlb.tlb import ASID_SHIFT, asid_bias
from repro.workloads.suite import MT_MIXES, tenant_names

FIELDS = ("accesses", "cycles", "base_cycles", "data_cycles",
          "walk_cycles", "walks", "tlb_l1_hits", "tlb_l2_hits",
          "prefetches_issued", "prefetches_useful", "prefetches_dropped")

NSCALE = Scale(trace_length=6_000, warmup=1_000, seed=7)
VSCALE = Scale(trace_length=4_000, warmup=800, seed=7)
SMALL = Scale(trace_length=4_000, warmup=800, seed=7)

#: The test_fast_path.py goldens for mc80 at the scales above — captured
#: from the pre-array-rewrite simulators and re-pinned here through the
#: multi-tenant path.
GOLDEN_NATIVE_BASELINE = (5000, 1172312, 10000, 576554, 585758, 3610,
                          168, 1222, 0, 0, 0)
GOLDEN_VIRT_BASELINE = (3200, 984727, 6400, 389136, 589191, 2328,
                        115, 757, 0, 0, 0)

SINGLE = MultiTenantSpec(tenants=1, quantum=0)


def fields_of(stats):
    return tuple(int(getattr(stats, field)) for field in FIELDS)


def signature(stats):
    return (fields_of(stats), tuple(sorted(stats.scheme_stats.items())),
            {str(level): dict(sorted(counts.items()))
             for level, counts in stats.service._counts.items()})


class TestSingleTenantParity:
    """tenants=1, no switching == the single-tenant path, byte for byte."""

    def test_native_baseline_matches_golden(self):
        stats = run_native_mt("mc80", cfg.BASELINE, SINGLE, scale=NSCALE)
        assert fields_of(stats) == GOLDEN_NATIVE_BASELINE
        assert stats.scheme_stats == {}

    def test_virtualized_baseline_matches_golden(self):
        stats = run_virtualized_mt("mc80", cfg.BASELINE, SINGLE,
                                   scale=VSCALE)
        assert fields_of(stats) == GOLDEN_VIRT_BASELINE
        assert stats.scheme_stats == {}

    @pytest.mark.parametrize("config,scheme", [
        (cfg.BASELINE, None),
        (cfg.P1_P2, None),
        (cfg.BASELINE, SchemeSpec.victima()),
        (cfg.BASELINE, SchemeSpec.revelator()),
    ], ids=["baseline", "asap", "victima", "revelator"])
    def test_native_all_schemes(self, config, scheme):
        single = run_native(("mc80"), config, scale=NSCALE, scheme=scheme)
        multi = run_native_mt("mc80", config, SINGLE, scale=NSCALE,
                              scheme=scheme)
        assert signature(multi) == signature(single)

    @pytest.mark.parametrize("config,scheme", [
        (cfg.FULL_2D, None),
        (cfg.BASELINE, SchemeSpec.victima()),
        (cfg.BASELINE, SchemeSpec.revelator()),
    ], ids=["asap-2d", "victima", "revelator"])
    def test_virtualized_all_schemes(self, config, scheme):
        single = run_virtualized("mc80", config, scale=VSCALE,
                                 scheme=scheme)
        multi = run_virtualized_mt("mc80", config, SINGLE, scale=VSCALE,
                                   scheme=scheme)
        assert signature(multi) == signature(single)


class TestRoundRobinSchedule:
    def test_quantum_zero_runs_each_tenant_to_completion(self):
        assert round_robin_schedule([5, 3], 0) == [(0, 0, 5), (1, 0, 3)]

    def test_round_robin_interleaves(self):
        assert round_robin_schedule([5, 3], 2) == [
            (0, 0, 2), (1, 0, 2), (0, 2, 4), (1, 2, 3), (0, 4, 5)]

    def test_exhausted_tenants_drop_out(self):
        schedule = round_robin_schedule([1, 6], 2)
        assert schedule[0] == (0, 0, 1)
        assert all(tenant == 1 for tenant, _, _ in schedule[1:])

    def test_covers_every_record_exactly_once(self):
        lengths = [7, 0, 13, 4]
        seen = [set() for _ in lengths]
        for tenant, start, stop in round_robin_schedule(lengths, 3):
            assert start < stop
            chunk = set(range(start, stop))
            assert not (seen[tenant] & chunk)
            seen[tenant] |= chunk
        assert [len(s) for s in seen] == lengths


class TestAsidIsolation:
    def test_distinct_asids_never_alias_in_the_tlb(self):
        tlbs = TlbHierarchy()
        tlbs.fill(100 | asid_bias(1), 555)
        assert tlbs.lookup(100) is None
        assert tlbs.lookup(100 | asid_bias(2)) is None
        assert tlbs.lookup(100 | asid_bias(1)) == 555

    def test_asid_zero_is_the_identity(self):
        assert asid_bias(0) == 0
        assert (100 | asid_bias(0)) == 100

    def test_bias_is_recoverable_from_the_key(self):
        key = (123456 | asid_bias(3))
        assert key >> ASID_SHIFT == 3

    def test_negative_asid_rejected(self):
        with pytest.raises(ValueError):
            asid_bias(-1)


class TestScheduler:
    def test_deterministic(self):
        mt = MultiTenantSpec(2, 500, "asid")
        a = run_native_mt("mix-kv", cfg.BASELINE, mt, scale=SMALL)
        b = run_native_mt("mix-kv", cfg.BASELINE, mt, scale=SMALL)
        assert signature(a) == signature(b)

    def test_switch_counters_published(self):
        mt = MultiTenantSpec(2, 500, "flush")
        stats = run_native_mt("mix-kv", cfg.BASELINE, mt, scale=SMALL)
        assert stats.scheme_stats["mt_tenants"] == 2
        assert stats.scheme_stats["mt_switches"] > 0
        assert (stats.scheme_stats["mt_flushes"]
                == stats.scheme_stats["mt_switches"])

    def test_asid_retention_never_walks_more_than_flushing(self):
        flush = run_native_mt("mix-kv", cfg.BASELINE,
                              MultiTenantSpec(2, 250, "flush"), scale=SMALL)
        asid = run_native_mt("mix-kv", cfg.BASELINE,
                             MultiTenantSpec(2, 250, "asid"), scale=SMALL)
        assert asid.walks <= flush.walks
        assert asid.scheme_stats["mt_flushes"] == 0

    def test_quantum_splitting_preserves_every_stat(self):
        """A single tenant sliced into quanta (asid policy: nothing is
        flushed) must aggregate to exactly the unsliced run — including
        the TLB hit counters, which are measured as per-segment windows
        of the *shared* cumulative counters (a fully-measured segment
        must snapshot its baseline at segment start, not at zero)."""
        scale = Scale(4_000, 0, 7)
        whole = run_native_mt("mc80", cfg.BASELINE,
                              MultiTenantSpec(1, 0), scale=scale)
        sliced = run_native_mt("mc80", cfg.BASELINE,
                               MultiTenantSpec(1, 500, "asid"), scale=scale)
        assert fields_of(sliced) == fields_of(whole)

    def test_total_accesses_split_across_tenants(self):
        mt = MultiTenantSpec(2, 500, "flush")
        stats = run_native_mt("mix-kv", cfg.BASELINE, mt,
                              scale=Scale(4_000, 0, 7))
        # Two tenants x (4000 // 2) records, no warmup: all measured.
        assert stats.accesses == 4_000

    def test_warmup_spans_the_interleaved_stream(self):
        mt = MultiTenantSpec(2, 500, "asid")
        stats = run_native_mt("mix-kv", cfg.BASELINE, mt,
                              scale=Scale(4_000, 1_000, 7))
        assert stats.accesses == 3_000

    def test_asap_runs_per_tenant_prefetchers(self):
        mt = MultiTenantSpec(2, 500, "asid")
        stats = run_native_mt("mix-kv", cfg.P1_P2, mt, scale=SMALL)
        assert stats.prefetches_issued > 0
        assert stats.scheme_stats["prefetches_issued"] \
            == stats.prefetches_issued

    def test_victima_parks_across_tenants(self):
        mt = MultiTenantSpec(2, 250, "asid")
        stats = run_native_mt("mix-kv", cfg.BASELINE, mt, scale=SMALL,
                              scheme=SchemeSpec.victima())
        assert stats.scheme_stats["parked"] > 0

    def test_virtualized_two_tenants(self):
        mt = MultiTenantSpec(2, 500, "asid")
        stats = run_virtualized_mt("mix-kv", cfg.BASELINE, mt,
                                   scale=Scale(1_500, 300, 7))
        assert stats.accesses == 1_200
        assert stats.walks > 0


class TestTenantNaming:
    def test_mix_cycles(self):
        assert tenant_names("mix-kv", 3) == ["mc80", "redis", "mc80"]

    def test_plain_workload_replicates(self):
        assert tenant_names("mcf", 2) == ["mcf", "mcf"]

    def test_unknown_name_raises(self):
        with pytest.raises(ValueError, match="unknown workload"):
            tenant_names("nope", 2)

    def test_mixes_reference_real_workloads(self):
        from repro.workloads.suite import WORKLOADS
        for members in MT_MIXES.values():
            assert all(name in WORKLOADS for name in members)

    def test_tenant_zero_keeps_the_seed(self):
        assert tenant_seed(42, 0) == 42
        assert tenant_seed(42, 1) != 42


class TestSpecAndJob:
    def test_spec_validation(self):
        with pytest.raises(ValueError):
            MultiTenantSpec(tenants=0)
        with pytest.raises(ValueError):
            MultiTenantSpec(quantum=-1)
        with pytest.raises(ValueError):
            MultiTenantSpec(switch_policy="lazy")

    def test_job_rejects_degenerate_single_tenant_spec(self):
        with pytest.raises(ValueError, match="single-tenant"):
            Job(kind=NATIVE, workload="mcf", scale=SMALL,
                multi_tenant=MultiTenantSpec(1, 0))

    def test_job_allows_single_tenant_with_switching(self):
        job = Job(kind=NATIVE, workload="mcf", scale=SMALL,
                  multi_tenant=MultiTenantSpec(1, 500))
        assert "mt1q500-flush" in job.label()

    def test_job_rejects_incompatible_knobs(self):
        mt = MultiTenantSpec(2, 500)
        for kwargs in (dict(colocated=True), dict(clustered_tlb=True),
                       dict(infinite_tlb=True), dict(pt_levels=5)):
            with pytest.raises(ValueError):
                Job(kind=NATIVE, workload="mcf", scale=SMALL,
                    multi_tenant=mt, **kwargs)
        with pytest.raises(ValueError):
            Job(kind=PT_INVENTORY, workload="mcf", scale=SMALL,
                multi_tenant=mt)

    def test_payload_and_hash_carry_the_spec(self):
        base = Job(kind=NATIVE, workload="mix-kv", scale=SMALL,
                   multi_tenant=MultiTenantSpec(2, 500, "asid"))
        other = Job(kind=NATIVE, workload="mix-kv", scale=SMALL,
                    multi_tenant=MultiTenantSpec(2, 500, "flush"))
        assert base.payload()["multi_tenant"] == {
            "tenants": 2, "quantum": 500, "policy": "asid"}
        assert base.spec_hash() != other.spec_hash()

    def test_single_tenant_jobs_have_null_payload_field(self):
        job = Job(kind=NATIVE, workload="mcf", scale=SMALL)
        assert job.payload()["multi_tenant"] is None

    def test_execute_job_dispatches_to_the_mt_runner(self):
        from repro.runtime.job import execute_job

        mt = MultiTenantSpec(2, 500, "asid")
        job = Job(kind=NATIVE, workload="mix-kv", scale=SMALL,
                  multi_tenant=mt, collect_service=False)
        direct = run_native_mt("mix-kv", cfg.BASELINE, mt, scale=SMALL,
                               collect_service=False)
        assert signature(execute_job(job)) == signature(direct)

    def test_engine_parallel_identical_to_serial(self):
        from repro.runtime.engine import Engine

        jobs = [Job(kind=NATIVE, workload="mix-kv", scale=SMALL,
                    multi_tenant=MultiTenantSpec(2, 500, policy),
                    collect_service=False)
                for policy in ("flush", "asid")]
        serial = Engine(jobs=1).map(jobs)
        parallel = Engine(jobs=2).map(jobs)
        assert [signature(s) for s in serial] \
            == [signature(s) for s in parallel]


class TestSharedPhysicalMemory:
    def test_tenants_share_one_buddy_but_not_frames(self):
        """Two tenants on one physical memory never map the same frame."""
        from repro.kernelsim.buddy import BuddyAllocator
        from repro.kernelsim.phys import PhysicalMemory
        from repro.workloads.suite import get

        buddy = BuddyAllocator(PhysicalMemory(2 << 41), seed=1)
        frames = []
        for index, name in enumerate(("mc80", "redis")):
            process = get(name).build_process(
                seed=tenant_seed(1, index), buddy=buddy,
                data_pool=f"data{index}", pt_pool=f"pt{index}")
            trace = np.arange(64, dtype=np.int64) * 4096 \
                + 0x5555_0000_0000
            process.populate((trace >> 12).tolist())
            frames.append({process.frame_of(int(vpn))
                           for vpn in (trace >> 12).tolist()})
        assert not (frames[0] & frames[1])
