"""Unit tests for the machine-model parameters (Table 5)."""

from repro.params import (
    DEFAULT_MACHINE,
    CacheParams,
    HierarchyParams,
    MachineParams,
    PwcParams,
    TlbHierarchyParams,
)


def test_table5_cache_geometry():
    h = HierarchyParams()
    assert h.l1.size_bytes == 32 * 1024 and h.l1.ways == 8
    assert h.l2.size_bytes == 256 * 1024 and h.l2.ways == 8
    assert h.l3.size_bytes == 20 * 1024 * 1024 and h.l3.ways == 20
    assert (h.l1.latency, h.l2.latency, h.l3.latency,
            h.memory_latency) == (4, 12, 40, 191)


def test_table5_tlb_geometry():
    t = TlbHierarchyParams()
    assert t.l1.entries == 64 and t.l1.ways == 8
    assert t.l2.entries == 1536 and t.l2.ways == 6
    assert t.l2.sets == 256


def test_table5_pwc_geometry():
    p = PwcParams()
    assert p.latency == 2
    assert (p.pl4_entries, p.pl3_entries, p.pl2_entries) == (2, 4, 32)
    assert p.pl2_ways == 4


def test_cache_derived_fields():
    c = CacheParams(size_bytes=64 * 128, ways=4, latency=1)
    assert c.lines == 128
    assert c.sets == 32


def test_pwc_scaling_preserves_latency():
    scaled = PwcParams().scaled(4)
    assert scaled.pl2_entries == 128
    assert scaled.latency == 2


def test_machine_with_pwc_scale_is_nondestructive():
    machine = DEFAULT_MACHINE.with_pwc_scale(2)
    assert machine.pwc.pl2_entries == 64
    assert DEFAULT_MACHINE.pwc.pl2_entries == 32
    assert machine.hierarchy == DEFAULT_MACHINE.hierarchy


def test_params_are_hashable():
    # Frozen dataclasses: usable as cache keys for experiment configs.
    assert hash(DEFAULT_MACHINE) == hash(MachineParams())
