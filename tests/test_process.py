"""Unit tests for the process address space (demand paging, PT placement)."""

import pytest

from repro.kernelsim.process import SegmentationFault
from repro.pagetable import constants as c
from tests.conftest import HEAP_BASE, make_process


def test_touch_faults_once():
    process, _ = make_process()
    first = process.touch(HEAP_BASE)
    assert first.faulted
    second = process.touch(HEAP_BASE)
    assert not second.faulted
    assert second.frame == first.frame
    assert process.faults == 1


def test_touch_outside_vmas_segfaults():
    process, _ = make_process()
    with pytest.raises(SegmentationFault):
        process.touch(0xDEAD_0000_0000)


def test_walk_path_after_touch():
    process, _ = make_process()
    process.touch(HEAP_BASE)
    path = process.walk_path(HEAP_BASE)
    assert [s.level for s in path.steps] == [4, 3, 2, 1]


def test_baseline_pt_nodes_scattered_by_buddy():
    process, _ = make_process(heap_pages=512 * 64, seed=5)
    # Touch one page per PL1 node so each touch creates a PL1 node.
    for i in range(64):
        process.touch(HEAP_BASE + i * c.LARGE_PAGE_SIZE)
    regions = process.pt_contiguous_regions()
    # Buddy placement scatters PT pages into many short runs (Table 2's
    # observation): far more than the 2 regions ASAP would produce.
    assert regions > 4


def test_asap_layout_pt_nodes_contiguous():
    process, _ = make_process(heap_pages=512 * 64, asap_levels=(1, 2))
    for i in range(64):
        process.touch(HEAP_BASE + i * c.LARGE_PAGE_SIZE)
    # PL1+PL2 nodes sit in reserved regions; only the root and PL3 are
    # buddy-placed.
    regions = process.pt_contiguous_regions()
    assert regions <= 4


def test_populate_counts_faults():
    process, _ = make_process()
    vpns = [HEAP_BASE // c.PAGE_SIZE + i for i in range(10)]
    assert process.populate(vpns) == 10
    assert process.populate(vpns) == 0


def test_cluster_frames_reflect_population():
    process, _ = make_process()
    vpn = HEAP_BASE // c.PAGE_SIZE
    process.touch(HEAP_BASE)
    frames = process.cluster_frames(vpn)
    assert frames[vpn & 7] is not None


def test_sequential_touch_order_gives_contiguous_frames():
    """Buddy runs make first-touch order = frame order, the contiguity
    Clustered TLB exploits (§5.4.1)."""
    process, _ = make_process(seed=11)
    process.buddy.configure_pool(process.data_pool, 256.0)
    frames = [process.touch(HEAP_BASE + i * c.PAGE_SIZE).frame
              for i in range(16)]
    contiguous = sum(1 for a, b in zip(frames, frames[1:]) if b == a + 1)
    assert contiguous >= 12


def test_large_page_vma():
    process, heap = make_process(heap_pages=2048, page_level=2)
    result = process.touch(HEAP_BASE)
    assert result.leaf_level == 2
    assert result.frame % 512 == 0
    path = process.walk_path(HEAP_BASE + 5 * c.PAGE_SIZE)
    assert path.leaf_level == 2
    assert len(path.steps) == 3


def test_large_page_vma_requires_alignment():
    process, _ = make_process()
    with pytest.raises(ValueError):
        process.mmap(0x1234_0000_1000, 1 << 21, page_level=2)


def test_mmap_alignment_validation():
    process, _ = make_process()
    with pytest.raises(ValueError):
        process.mmap(0x100, 4096)


def test_brk_growth_then_touch():
    process, heap = make_process(growable=True, asap_levels=(1, 2))
    old_end = heap.end
    process.brk(heap, 64 * c.PAGE_SIZE)
    result = process.touch(old_end + c.PAGE_SIZE)
    assert result.faulted


def test_pt_page_count_inventory():
    process, _ = make_process()
    process.touch(HEAP_BASE)
    # root + PL3 + PL2 + PL1
    assert process.pt_page_count() == 4


def test_created_nodes_reported_on_fault():
    process, _ = make_process()
    result = process.touch(HEAP_BASE)
    assert [lvl for lvl, _, _ in result.created_nodes] == [3, 2, 1]
    result2 = process.touch(HEAP_BASE + c.PAGE_SIZE)
    assert result2.created_nodes == []
