"""Tests for the buddy allocator's arena dispersion model.

The arena design balances two requirements: allocation runs must be
*scattered* enough that page tables built over them are realistically
fragmented (and, under virtualization, that guest-physical pages spread
across the host PT), yet slots must not be exhausted by long traces.
"""

import pytest

from repro.kernelsim.buddy import BuddyAllocator
from repro.kernelsim.phys import PhysicalMemory


def make(runs_per_arena=4, seed=0, mean_run=8.0):
    return BuddyAllocator(
        PhysicalMemory(1 << 40), seed=seed,
        default_mean_run=mean_run, runs_per_arena=runs_per_arena,
    )


def test_runs_within_arena_are_gap_separated():
    buddy = make(runs_per_arena=8, mean_run=4.0)
    frames = buddy.alloc_frames(64)
    frames.sort()
    gaps = [b - a for a, b in zip(frames, frames[1:])]
    # Guard gaps keep consecutive runs from merging into one region.
    assert any(gap == 2 for gap in gaps)  # run boundary (1 frame guard)


def test_runs_per_arena_bounds_packing():
    compact = make(runs_per_arena=1000)
    disperse = make(runs_per_arena=1)

    def spread(buddy):
        frames = buddy.alloc_frames(2000)
        slots = {frame // 4096 for frame in frames}
        return len(slots)

    assert spread(disperse) > 4 * spread(compact)


def test_many_runs_do_not_exhaust_slots():
    # The failure mode behind the original Figure 2 crash: thousands of
    # short runs must not run out of placement slots; when random probing
    # saturates, the allocator falls back to scanning for free slots.
    buddy = BuddyAllocator(PhysicalMemory(8 << 30), seed=1,
                           default_mean_run=6.0)
    frames = buddy.alloc_frames(30_000)
    assert len(set(frames)) == 30_000


def test_allocation_fails_only_on_true_exhaustion():
    import pytest

    from repro.kernelsim.buddy import OutOfMemoryError

    buddy = BuddyAllocator(PhysicalMemory(64 << 20), seed=1,  # 4 slots
                           default_mean_run=4.0)
    with pytest.raises(OutOfMemoryError):
        buddy.alloc_frames(20_000)


def test_pool_dispersion_independent_per_pool():
    buddy = make()
    a = {f // 4096 for f in buddy.alloc_frames(100, pool="a")}
    b = {f // 4096 for f in buddy.alloc_frames(100, pool="b")}
    assert a.isdisjoint(b)


def test_guest_scale_allocation_for_virtualization():
    # A 128GB guest (Table 4) with demand-order population must support
    # experiment-scale page counts.
    buddy = BuddyAllocator(PhysicalMemory(128 << 30), seed=2,
                           default_mean_run=8.0)
    frames = buddy.alloc_frames(60_000)
    spread_slots = len({f // 4096 for f in frames})
    # Dispersed over thousands of 16MB slots -> a big, cold host PT.
    assert spread_slots > 1_000
