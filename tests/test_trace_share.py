"""Zero-copy worker-trace sharing (`repro.traces.share`).

The overlay must never change *what* a worker simulates — only how the
trace bytes reach it.  These tests pin the prepare/activate/lookup
round-trip, byte-identity of an overlay-fed run against plain
generation, and the silent-fallback contract on every failure mode.
"""

from __future__ import annotations

from types import SimpleNamespace

import numpy as np
import pytest

from repro.runtime.job import NATIVE, Job
from repro.sim import runner
from repro.sim.runner import Scale, run_native
from repro.traces import share
from repro.traces.source import ArraySource
from repro.workloads.suite import get as get_workload

STREAMED = 20_000  # > the lowered STREAM_RECORDS below


@pytest.fixture(autouse=True)
def _lowered_threshold(monkeypatch):
    """Make tiny traces 'streamed' so the overlay path engages, and
    guarantee no overlay leaks across tests."""
    monkeypatch.setattr(runner, "STREAM_RECORDS", 10_000)
    yield
    share.deactivate()


def _job(records: int = STREAMED, seed: int = 7) -> Job:
    return Job(kind=NATIVE, workload="mc80",
               scale=Scale(trace_length=records, warmup=records // 5,
                           seed=seed))


def test_prepare_materializes_streamed_axes_once(tmp_path):
    jobs = [_job(seed=7), _job(seed=7), _job(seed=8),
            _job(records=2_000)]  # below threshold: not shared
    overlay = share.prepare(jobs, tmp_path)
    assert set(overlay) == {("mc80", STREAMED, 7), ("mc80", STREAMED, 8)}
    for key, path in overlay.items():
        assert share._valid(type(tmp_path)(path), *key)


def test_prepare_skips_trace_backed_jobs(tmp_path):
    job = _job()
    assert job.trace is None and share.prepare([job], tmp_path)
    # ``prepare`` only reads workload/scale/trace, so a namespace stands
    # in for a trace-backed job (Job validates real TraceRefs).
    trace_backed = SimpleNamespace(workload="mc80", scale=job.scale,
                                   trace="sentinel")
    assert share.prepare([trace_backed], tmp_path) == {}


def test_lookup_replays_the_canonical_chunk_stream(tmp_path):
    overlay = share.prepare([_job()], tmp_path)
    share.activate(overlay)
    source = share.lookup("mc80", STREAMED, 7)
    assert isinstance(source, ArraySource)
    spec = get_workload("mc80")
    expected = spec.generate_trace(STREAMED, seed=7)
    replayed = np.concatenate(list(source.chunks()))
    assert np.array_equal(replayed, expected)
    # Unknown axes miss the overlay.
    assert share.lookup("mc80", STREAMED, 99) is None
    share.deactivate()
    assert share.lookup("mc80", STREAMED, 7) is None


def test_overlay_fed_run_is_byte_identical(tmp_path):
    scale = Scale(trace_length=STREAMED, warmup=STREAMED // 5, seed=7)
    plain = run_native("mc80", scale=scale)
    share.activate(share.prepare([_job()], tmp_path))
    overlaid = run_native("mc80", scale=scale)
    assert plain == overlaid


def test_lookup_falls_back_on_stale_entry(tmp_path):
    overlay = share.prepare([_job()], tmp_path)
    share.activate(overlay)
    for path in overlay.values():
        import shutil

        shutil.rmtree(path)
    assert share.lookup("mc80", STREAMED, 7) is None


def test_prepare_failure_is_silent(tmp_path):
    # An unmaterializable axis (bogus workload) is skipped, not raised.
    bogus = SimpleNamespace(workload="no-such-workload",
                            scale=_job().scale, trace=None)
    assert share.prepare([bogus], tmp_path) == {}


def test_shared_trace_dir_prefers_cache_root(tmp_path):
    assert share.shared_trace_dir(tmp_path) == \
        tmp_path / share.TRACES_SUBDIR
    fallback = share.shared_trace_dir(None)
    assert fallback.name == "repro-traces"
