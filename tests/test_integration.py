"""Cross-module integration tests: OS + page table + walker + ASAP.

These exercise whole slices of the stack against each other — the
invariants that individual unit tests cannot see.
"""


from repro.core.prefetcher import AsapPrefetcher
from repro.core.range_registers import RangeRegisterFile, VmaDescriptor
from repro.kernelsim.buddy import BuddyAllocator
from repro.kernelsim.phys import PhysicalMemory
from repro.kernelsim.process import ProcessAddressSpace
from repro.kernelsim.pt_layout import AsapPtLayout
from repro.kernelsim.vma import VmaKind
from repro.mem.hierarchy import CacheHierarchy
from repro.pagetable import constants as c
from repro.pagetable.pwc import SplitPwc
from repro.pagetable.walker import PageWalker

HEAP = 0x6000_0000_0000


def asap_process(heap_pages=1 << 16, growable=False, seed=3):
    buddy = BuddyAllocator(PhysicalMemory(1 << 41), seed=seed)
    layout = AsapPtLayout(buddy, levels=(1, 2), seed=seed)
    process = ProcessAddressSpace(buddy=buddy, asap_layout=layout)
    heap = process.mmap(HEAP, heap_pages * c.PAGE_SIZE, kind=VmaKind.HEAP,
                        name="heap", growable=growable)
    return process, heap


def descriptor_for(process, vma):
    bases = process.asap_layout.descriptor_bases(vma)
    return VmaDescriptor(start=vma.start, end=vma.end,
                         level_bases=tuple(sorted(bases.items())))


class TestPrefetchTargetsMatchWalks:
    def test_descriptor_arithmetic_lands_on_walk_steps(self):
        """End to end: for every touched page, the range-register
        computation must produce exactly the PL1/PL2 entry addresses the
        walker will read — the identity ASAP's correctness rests on."""
        process, heap = asap_process()
        descriptor = descriptor_for(process, heap)
        for index in (0, 1, 511, 512, 12345, (1 << 16) - 1):
            va = HEAP + index * c.PAGE_SIZE
            process.touch(va)
            path = process.walk_path(va)
            by_level = {step.level: step.entry_addr for step in path.steps}
            assert descriptor.entry_addr(va, 1) == by_level[1]
            assert descriptor.entry_addr(va, 2) == by_level[2]

    def test_prefetched_lines_are_the_walked_lines(self):
        process, heap = asap_process()
        va = HEAP + 777 * c.PAGE_SIZE
        process.touch(va)
        hierarchy = CacheHierarchy()
        registers = RangeRegisterFile()
        registers.load([descriptor_for(process, heap)])
        prefetcher = AsapPrefetcher(hierarchy, registers, levels=(1, 2))
        completions = prefetcher.on_tlb_miss(va, 0)
        assert set(completions) == {1, 2}
        walker = PageWalker(hierarchy, SplitPwc())
        outcome = walker.walk(process.walk_path(va), 0, completions)
        served = dict(outcome.records)
        # The deep levels hit the L1-D thanks to the prefetch.
        assert served[1] == "L1"
        assert served[2] == "L1"


class TestVmaGrowthEndToEnd:
    def test_growth_within_headroom_stays_prefetchable(self):
        process, heap = asap_process(heap_pages=2048, growable=True)
        process.brk(heap, 512 * c.PAGE_SIZE)
        va = heap.end - c.PAGE_SIZE
        process.touch(va)
        layout = process.asap_layout
        assert not layout.is_hole(heap, 1, va)
        # The descriptor (loaded with the new bounds) still computes the
        # walked address.
        descriptor = descriptor_for(process, heap)
        path = process.walk_path(va)
        assert descriptor.entry_addr(va, 1) == path.steps[-1].entry_addr

    def test_growth_beyond_headroom_walks_correctly_via_holes(self):
        process, heap = asap_process(heap_pages=2048, growable=True)
        # Grow far beyond the 50% headroom.
        process.brk(heap, 64 * 2048 * c.PAGE_SIZE)
        va = heap.end - c.PAGE_SIZE
        result = process.touch(va)
        assert result.faulted
        # The walk still resolves (pointer-based tree, §3.7.2) ...
        path = process.walk_path(va)
        assert path.frame == result.frame
        # ... but the node is a hole: descriptor arithmetic points into
        # the (exhausted) region, not at the real node.
        assert process.asap_layout.is_hole(heap, 1, va)
        descriptor = descriptor_for(process, heap)
        assert descriptor.entry_addr(va, 1) != path.steps[-1].entry_addr


class TestLayoutIsolation:
    def test_two_vmas_get_disjoint_regions(self):
        buddy = BuddyAllocator(PhysicalMemory(1 << 41), seed=5)
        layout = AsapPtLayout(buddy, levels=(1,))
        process = ProcessAddressSpace(buddy=buddy, asap_layout=layout)
        a = process.mmap(HEAP, 1 << 30, name="a")
        b = process.mmap(HEAP + (1 << 40), 1 << 30, name="b")
        region_a = layout.region(a, 1)
        region_b = layout.region(b, 1)
        span_a = range(region_a.base_frame,
                       region_a.base_frame + region_a.reserved_total)
        span_b = range(region_b.base_frame,
                       region_b.base_frame + region_b.reserved_total)
        assert set(span_a).isdisjoint(span_b)

    def test_pt_and_data_frames_never_collide(self):
        process, heap = asap_process(heap_pages=4096)
        data_frames = set()
        for index in range(0, 4096, 64):
            data_frames.add(process.touch(HEAP + index * c.PAGE_SIZE).frame)
        pt_frames = set(process.page_table.node_frames())
        assert data_frames.isdisjoint(pt_frames)


class TestPageFaultDetection:
    def test_fault_path_in_reserved_region_is_prefetchable(self):
        """§3.7.1: with reserved regions, even an unpopulated PL1 node has
        a known location, so fault detection can be accelerated."""
        process, heap = asap_process()
        touched = HEAP
        process.touch(touched)
        # A sibling page in the same PL1 node, never touched.
        untouched = HEAP + c.PAGE_SIZE
        fault = process.fault_path(untouched)
        assert fault.missing_level == 0  # all nodes exist, PTE empty
        descriptor = descriptor_for(process, heap)
        assert descriptor.entry_addr(untouched, 1) == \
            fault.resolved_steps[-1].entry_addr
