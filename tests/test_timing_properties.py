"""Property-based tests on walk timing — the ASAP overlap model.

The paper's central safety-of-optimisation claim: prefetches are pure
overlap, so an ASAP walk is never slower than the same walk without
prefetches, and never faster than the best single access could allow.
These properties are checked against hypothesis-generated cache states
and walk shapes.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config import AsapConfig
from repro.mem.hierarchy import CacheHierarchy
from repro.pagetable.pwc import SplitPwc
from repro.pagetable.radix import RadixPageTable
from repro.pagetable.walker import PageWalker

#: Strategy: a virtual address in the canonical lower half, page aligned.
vas = st.integers(0, (1 << 46) - 1).map(lambda x: x & ~0xFFF)
#: Strategy: lines to pre-warm (models arbitrary prior cache state).
warm_lines = st.lists(st.integers(0, 1 << 30), max_size=50)


def _walk_pair(va: int, warm: list[int], levels: tuple[int, ...]):
    """Price the same cold-state walk without and with ASAP prefetches."""
    pt = RadixPageTable()
    pt.map_page(va, frame=1234)
    path = pt.walk_path(va)

    def run(with_prefetch: bool) -> int:
        hierarchy = CacheHierarchy()
        hierarchy.warm(warm)
        walker = PageWalker(hierarchy, SplitPwc())
        prefetches = None
        if with_prefetch:
            prefetches = {}
            for step in path.steps:
                if step.level in levels:
                    completion = hierarchy.prefetch_line(step.line, 0)
                    if completion is not None:
                        prefetches[step.level] = completion
        return walker.walk(path, 0, prefetches).latency

    return run(False), run(True)


class TestOverlapNeverHurts:
    @given(vas, warm_lines, st.sets(st.sampled_from([1, 2]), min_size=1))
    @settings(max_examples=60)
    def test_asap_walk_never_slower(self, va, warm, levels):
        baseline, asap = _walk_pair(va, warm, tuple(levels))
        assert asap <= baseline

    @given(vas, warm_lines)
    @settings(max_examples=40)
    def test_asap_walk_bounded_below_by_single_access(self, va, warm):
        """A walk can't beat PWC-probe + one L1 hit; with everything
        prefetched it can't beat the longest single prefetch either."""
        baseline, asap = _walk_pair(va, warm, (1, 2))
        assert asap >= 2 + 4  # PWC probe + one L1-D access
        assert baseline >= asap >= 6


class TestWalkDecomposition:
    @given(vas)
    @settings(max_examples=40)
    def test_cold_walk_is_sum_of_serial_accesses(self, va):
        pt = RadixPageTable()
        pt.map_page(va, frame=7)
        hierarchy = CacheHierarchy()
        walker = PageWalker(hierarchy, SplitPwc())
        outcome = walker.walk(pt.walk_path(va))
        # Fully cold: every level from DRAM, serialized.
        assert outcome.latency == 2 + 4 * 191
        assert [served for _, served in outcome.records] == ["MEM"] * 4

    @given(vas, st.integers(0, 3))
    @settings(max_examples=40)
    def test_warmer_caches_never_lengthen_walks(self, va, warm_levels):
        pt = RadixPageTable()
        pt.map_page(va, frame=7)
        path = pt.walk_path(va)
        cold_hierarchy = CacheHierarchy()
        cold = PageWalker(cold_hierarchy, SplitPwc()).walk(path).latency
        warm_hierarchy = CacheHierarchy()
        warm_hierarchy.warm([s.line for s in path.steps[:warm_levels]])
        warm = PageWalker(warm_hierarchy, SplitPwc()).walk(path).latency
        assert warm <= cold


class TestConfigAlgebra:
    @given(st.sets(st.sampled_from([1, 2, 3])),
           st.sets(st.sampled_from([1, 2])),
           st.sets(st.sampled_from([1, 2])))
    @settings(max_examples=30)
    def test_config_levels_normalised(self, native, guest, host):
        config = AsapConfig(
            native_levels=tuple(native),
            guest_levels=tuple(guest),
            host_levels=tuple(host),
        )
        assert config.native_levels == tuple(sorted(native))
        assert config.enabled == bool(native or guest or host)
