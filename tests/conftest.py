"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import pytest

from repro.kernelsim.buddy import BuddyAllocator
from repro.kernelsim.phys import PhysicalMemory
from repro.kernelsim.process import ProcessAddressSpace
from repro.kernelsim.pt_layout import AsapPtLayout
from repro.kernelsim.vma import VmaKind
from repro.mem.hierarchy import CacheHierarchy
from repro.pagetable.constants import PAGE_SIZE

#: A convenient VMA base well inside the canonical lower half.
HEAP_BASE = 0x5555_0000_0000


def make_process(
    heap_pages: int = 4096,
    asap_levels: tuple[int, ...] = (),
    seed: int = 1,
    growable: bool = False,
    page_level: int = 1,
):
    """A process with one heap VMA, optionally with the ASAP PT layout."""
    buddy = BuddyAllocator(PhysicalMemory(1 << 40), seed=seed)
    layout = None
    if asap_levels:
        layout = AsapPtLayout(buddy, levels=asap_levels, seed=seed)
    process = ProcessAddressSpace(buddy=buddy, asap_layout=layout)
    heap = process.mmap(
        HEAP_BASE,
        heap_pages * PAGE_SIZE,
        kind=VmaKind.HEAP,
        name="heap",
        growable=growable,
        page_level=page_level,
    )
    return process, heap


@pytest.fixture
def hierarchy() -> CacheHierarchy:
    return CacheHierarchy()
