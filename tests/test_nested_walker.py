"""Unit tests for the 2D nested page walker (Figure 7 timing)."""

from repro.core.prefetcher import AsapPrefetcher
from repro.core.range_registers import RangeRegisterFile, VmaDescriptor
from repro.mem.hierarchy import CacheHierarchy
from repro.pagetable.nested import NestedPageWalker
from repro.pagetable.pwc import SplitPwc
from tests.test_hypervisor import GUEST_MEM, HEAP, make_vm


def make_walker():
    hierarchy = CacheHierarchy()
    return NestedPageWalker(hierarchy, SplitPwc(), SplitPwc()), hierarchy


def test_cold_2d_walk_prices_24_accesses():
    walker, _ = make_walker()
    vm = make_vm()
    vm.touch(HEAP)
    outcome = walker.walk(vm.nested_path(HEAP))
    # Figure 7: 24 requests in total.  The first host 1D walk is fully
    # cold; later host walks legitimately reuse hPT upper levels through
    # the host PWC and the caches, so the total is below 24 DRAM trips.
    assert len(outcome.records) == 24
    assert outcome.records[:4] == [
        ("h4", "MEM"), ("h3", "MEM"), ("h2", "MEM"), ("h1", "MEM")
    ]
    assert outcome.latency <= 2 + 5 * 2 + 24 * 191
    assert outcome.latency >= 8 * 191  # still dominated by DRAM accesses


def test_repeat_walk_collapses_via_pwcs_and_caches():
    walker, _ = make_walker()
    vm = make_vm()
    vm.touch(HEAP)
    walker.walk(vm.nested_path(HEAP))
    repeat = walker.walk(vm.nested_path(HEAP))
    assert repeat.latency < 100  # everything in PWCs and L1


def test_2d_walk_much_longer_than_native():
    """The 4.4x native->virtualized blowup of §5.2 comes from the 24-access
    schedule (even a cold 2D walk with intra-walk reuse stays far above a
    cold native walk)."""
    walker, _ = make_walker()
    vm = make_vm()
    vm.touch(HEAP)
    virt = walker.walk(vm.nested_path(HEAP)).latency
    native_cold = 2 + 4 * 191
    assert virt > 2 * native_cold


def test_host_pwc_accelerates_shared_upper_levels():
    walker, _ = make_walker()
    vm = make_vm(heap_pages=1 << 18)
    far = HEAP + (1 << 27)  # different guest PL1/PL2 nodes
    vm.touch(HEAP)
    vm.touch(far)
    walker.walk(vm.nested_path(HEAP))
    outcome = walker.walk(vm.nested_path(far))
    labels = dict()
    for key, served in outcome.records:
        labels.setdefault(key, []).append(served)
    # Host upper levels (h4/h3) are shared across all host walks and were
    # cached by the first 2D walk.
    assert all(s == "PWC" for s in labels.get("h4", [])) or "h4" not in labels


def test_guest_prefetch_overlaps_deep_guest_entries():
    walker, hierarchy = make_walker()
    vm = make_vm(guest_asap_levels=(1, 2), back_guest_pt=True)
    vm.touch(HEAP)
    path = vm.nested_path(HEAP)
    baseline = walker.walk(path).latency
    # Rebuild cold state.
    walker, hierarchy = make_walker()
    prefetches = {}
    for step in path.steps:
        if step.guest_level in (1, 2):
            completion = hierarchy.prefetch_line(step.entry_host_addr >> 6, 0)
            prefetches[step.guest_level] = completion
    accelerated = walker.walk(path, 0, guest_prefetches=prefetches).latency
    assert accelerated < baseline


def test_host_prefetcher_hook_called_per_host_walk():
    walker, hierarchy = make_walker()
    vm = make_vm(host_asap_levels=(1, 2))
    vm.touch(HEAP)
    path = vm.nested_path(HEAP)

    calls = []

    class Recorder:
        def on_tlb_miss(self, gpa, now):
            calls.append(gpa)
            return {}

    walker.walk(path, host_prefetcher=Recorder())
    assert len(calls) == 5  # one per host 1D walk


def test_host_asap_prefetcher_shortens_walk():
    vm = make_vm(host_asap_levels=(1, 2))
    vm.touch(HEAP)
    path = vm.nested_path(HEAP)

    walker, _ = make_walker()
    baseline = walker.walk(path).latency

    walker, hierarchy = make_walker()
    rrf = RangeRegisterFile()
    rrf.load([
        VmaDescriptor(
            start=0, end=GUEST_MEM,
            level_bases=tuple(vm.host_descriptor_bases().items()),
        )
    ])
    host_prefetcher = AsapPrefetcher(hierarchy, rrf, levels=(1, 2))
    accelerated = walker.walk(path, host_prefetcher=host_prefetcher).latency
    assert accelerated < baseline


def test_2mb_host_walks_have_19_accesses():
    walker, _ = make_walker()
    vm = make_vm(host_page_level=2)
    vm.touch(HEAP)
    outcome = walker.walk(vm.nested_path(HEAP))
    assert len(outcome.records) == 5 * 3 + 4  # 19 accesses (§5.4.2)


def test_walk_statistics():
    walker, _ = make_walker()
    vm = make_vm()
    vm.touch(HEAP)
    walker.walk(vm.nested_path(HEAP))
    walker.walk(vm.nested_path(HEAP))
    assert walker.walks == 2
    assert walker.average_latency > 0
    assert walker.total_accesses > 0
