"""Unit tests for the plain TLB and the two-level TLB hierarchy."""

import pytest

from repro.params import TlbHierarchyParams, TlbParams
from repro.tlb.hierarchy import TlbHierarchy
from repro.tlb.tlb import Tlb


class TestPlainTlb:
    def test_miss_then_hit(self):
        tlb = Tlb(TlbParams(entries=8, ways=2))
        assert tlb.lookup(5) is None
        tlb.fill(5, 500)
        assert tlb.lookup(5) == 500

    def test_lru_within_set(self):
        tlb = Tlb(TlbParams(entries=2, ways=2))  # one set
        tlb.fill(0, 10)
        tlb.fill(2, 20)
        tlb.lookup(0)
        victim = tlb.fill(4, 40)
        assert victim == (2, 20)
        assert tlb.lookup(0) == 10

    def test_invalidate(self):
        tlb = Tlb(TlbParams(entries=8, ways=2))
        tlb.fill(5, 500)
        assert tlb.invalidate(5)
        assert tlb.lookup(5) is None

    def test_geometry_validation(self):
        with pytest.raises(ValueError):
            TlbParams(entries=7, ways=2)


class TestTlbHierarchy:
    def test_miss_fill_hit(self):
        tlbs = TlbHierarchy()
        assert tlbs.lookup(100) is None
        tlbs.fill(100, 7)
        assert tlbs.lookup(100) == 7
        assert tlbs.l1_hits == 1

    def test_l2_hit_refills_l1(self):
        params = TlbHierarchyParams(
            l1=TlbParams(entries=2, ways=2),
            l2=TlbParams(entries=64, ways=4),
        )
        tlbs = TlbHierarchy(params)
        for vpn in range(4):
            tlbs.fill(vpn, vpn)
        # vpn 0 was evicted from the tiny L1 but lives in L2.
        assert tlbs.lookup(0) == 0
        assert tlbs.l2_hits == 1
        assert tlbs.lookup(0) == 0
        assert tlbs.l1_hits == 1

    def test_large_page_covers_512_vpns(self):
        tlbs = TlbHierarchy()
        base_vpn = 512 * 7
        tlbs.fill(base_vpn, 4096, large=True)
        # Any vpn within the 2MB region hits via the large tag.
        assert tlbs.lookup(base_vpn + 17) == 4096
        # Outside the region: miss.
        assert tlbs.lookup(base_vpn + 512) is None

    def test_misses_count_walks(self):
        tlbs = TlbHierarchy()
        for vpn in range(10):
            tlbs.lookup(vpn)
        assert tlbs.walks_triggered == 10
        assert tlbs.mpki(10_000) == pytest.approx(1.0)

    def test_infinite_tlb_never_evicts(self):
        tlbs = TlbHierarchy(infinite=True)
        for vpn in range(100_000):
            tlbs.fill(vpn, vpn)
        assert tlbs.lookup(0) == 0
        assert tlbs.lookup(99_999) == 99_999
        assert tlbs.stats.misses == 0

    def test_clustered_l2_variant_coalesces(self):
        tlbs = TlbHierarchy(clustered=True)
        # 8 virtually consecutive pages mapping 8 physically consecutive
        # frames: one cluster entry.
        neighbours = list(range(800, 808))
        tlbs.fill(0, 800, neighbour_frames=neighbours)
        assert tlbs.l2_clustered is not None
        assert tlbs.l2_clustered.occupancy == 1
        # vpn 5 was never filled explicitly but coalesced in.
        assert tlbs.lookup(5) == 805

    def test_flush(self):
        tlbs = TlbHierarchy()
        tlbs.fill(1, 1)
        tlbs.flush()
        assert tlbs.lookup(1) is None
