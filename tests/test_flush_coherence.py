"""Flush coherence: one entry point restores cold translation state.

The headline bug this pins: ``TlbHierarchy.flush()`` alone is *not* a
safe mid-run flush — the page-walk caches, the in-flight prefetch MSHRs
and the simulators' per-vpn flattened walk-path caches all survive it,
a stale-translation hazard for any flush-then-continue scenario (the
multi-tenant scheduler's full-flush switch policy being the first real
caller).  ``flush_translation_state()`` on either simulator must leave
every translation structure byte-identical to a freshly built one, and
a continued run must behave like a translation-cold machine (every page
re-walks).
"""

import numpy as np

from repro.core import config as cfg
from repro.sim.runner import Scale, build_vm, make_trace
from repro.sim.simulator import NativeSimulation
from repro.sim.virt import VirtualizedSimulation
from repro.workloads.suite import get

SPEC = get("mc80")
NSCALE = Scale(trace_length=4_000, warmup=0, seed=7)
VSCALE = Scale(trace_length=1_500, warmup=0, seed=7)


def _native_sim():
    process = SPEC.build_process(seed=7)
    return NativeSimulation(process)


def _virt_sim():
    vm = build_vm(SPEC, cfg.BASELINE, VSCALE)
    return VirtualizedSimulation(vm)


def _tlb_state(tlbs):
    state = [list(tlbs.l1.tags), list(tlbs.l1.frames), list(tlbs.l1.sizes)]
    if tlbs.l2_plain is not None:
        state += [list(tlbs.l2_plain.tags), list(tlbs.l2_plain.frames),
                  list(tlbs.l2_plain.sizes)]
    if tlbs.l2_clustered is not None:
        state += [list(tlbs.l2_clustered.vtags),
                  list(tlbs.l2_clustered.ptags),
                  list(tlbs.l2_clustered.sizes)]
    state.append(dict(tlbs._infinite_store))
    return state


def _pwc_state(pwc):
    return [(level, list(tlb.tags), list(tlb.frames), list(tlb.sizes))
            for level, tlb in pwc.view]


class TestNativeFlush:
    def test_mid_run_flush_is_byte_identical_to_cold_structures(self):
        trace = make_trace(SPEC, NSCALE)
        sim = _native_sim()
        sim.run(trace[:2000], warmup=0, init_order=SPEC.init_order)
        # The run left every translation structure populated...
        assert sim.tlbs.l1.occupancy > 0
        assert sum(sim.pwc.occupancy(level)
                   for level, _ in sim.pwc.view) > 0
        assert sim._fast_paths or sim._flat_paths

        sim.flush_translation_state()

        cold = _native_sim()
        assert _tlb_state(sim.tlbs) == _tlb_state(cold.tlbs)
        assert _pwc_state(sim.pwc) == _pwc_state(cold.pwc)
        assert sim.hierarchy.mshrs.occupancy == 0
        assert not sim._flat_paths and not sim._fast_paths

    def test_tlb_flush_alone_is_incoherent(self):
        """Documents the hazard the entry point fixes: the old flush
        surface leaves PWCs and flat walk-path caches populated."""
        trace = make_trace(SPEC, NSCALE)
        sim = _native_sim()
        sim.run(trace[:2000], warmup=0, init_order=SPEC.init_order)
        sim.tlbs.flush()
        assert sum(sim.pwc.occupancy(level)
                   for level, _ in sim.pwc.view) > 0
        assert sim._fast_paths or sim._flat_paths

    def test_continuation_after_flush_rewalks_every_page(self):
        trace = make_trace(SPEC, NSCALE)
        sim = _native_sim()
        first = sim.run(trace, warmup=0, init_order=SPEC.init_order)

        # Control: replaying the same trace on warm structures walks
        # far less than the cold pass did.
        warm = sim.run(trace, warmup=0, populate=False)
        assert warm.walks < first.walks

        # Flush, then replay: translation-cold behaviour again — at
        # least as many walks as the warm control, and every distinct
        # page must re-walk at least once.
        sim.flush_translation_state()
        replay = sim.run(trace, warmup=0, populate=False)
        distinct_pages = len(set((trace >> 12).tolist()))
        assert replay.walks >= distinct_pages
        assert replay.walks > warm.walks

    def test_flush_preserves_statistics_and_data_caches(self):
        trace = make_trace(SPEC, NSCALE)
        sim = _native_sim()
        sim.run(trace[:2000], warmup=0, init_order=SPEC.init_order)
        walks_before = sim.walker.walks
        tlb_stats_before = (sim.tlbs.stats.hits, sim.tlbs.stats.misses)
        l1_occupancy = sim.hierarchy.l1.occupancy
        sim.flush_translation_state()
        assert sim.walker.walks == walks_before
        assert (sim.tlbs.stats.hits,
                sim.tlbs.stats.misses) == tlb_stats_before
        assert sim.hierarchy.l1.occupancy == l1_occupancy


class TestVirtualizedFlush:
    def test_mid_run_flush_is_byte_identical_to_cold_structures(self):
        trace = make_trace(SPEC, VSCALE)
        sim = _virt_sim()
        sim.run(trace, warmup=0, init_order=SPEC.init_order)
        assert sim.tlbs.l1.occupancy > 0
        assert sim._nested_paths

        sim.flush_translation_state()

        cold = _virt_sim()
        assert _tlb_state(sim.tlbs) == _tlb_state(cold.tlbs)
        assert _pwc_state(sim.guest_pwc) == _pwc_state(cold.guest_pwc)
        assert _pwc_state(sim.host_pwc) == _pwc_state(cold.host_pwc)
        assert sim.hierarchy.mshrs.occupancy == 0
        assert not sim._nested_paths

    def test_continuation_after_flush_rewalks(self):
        trace = make_trace(SPEC, VSCALE)
        sim = _virt_sim()
        sim.run(trace, warmup=0, init_order=SPEC.init_order)
        warm = sim.run(trace, warmup=0, populate=False)
        sim.flush_translation_state()
        replay = sim.run(trace, warmup=0, populate=False)
        distinct_pages = len(set((trace >> 12).tolist()))
        assert replay.walks >= distinct_pages
        assert replay.walks > warm.walks


def test_flush_drains_prefetch_mshrs():
    """ASAP runs leave prefetch MSHRs in flight; the coherence contract
    drains them so a restarted clock cannot merge with stale entries."""
    process = SPEC.build_process(asap_levels=(1, 2), seed=7)
    sim = NativeSimulation(process, asap=cfg.P1_P2)
    trace = make_trace(SPEC, NSCALE)
    sim.run(trace[:1500], warmup=0, init_order=SPEC.init_order)
    # Force an entry in flight, then flush.
    sim.hierarchy.mshrs.try_allocate(0xDEAD, now=0, completion=10**9)
    assert sim.hierarchy.mshrs.occupancy > 0
    sim.flush_translation_state()
    assert sim.hierarchy.mshrs.occupancy == 0


def test_trace_views_are_not_mutated():
    trace = make_trace(SPEC, NSCALE)
    snapshot = np.array(trace, copy=True)
    sim = _native_sim()
    sim.run(trace, warmup=0, init_order=SPEC.init_order)
    sim.flush_translation_state()
    sim.run(trace[2000:], warmup=0, populate=False)
    assert np.array_equal(trace, snapshot)


def test_flush_kills_victima_parked_translations():
    """Victima's cache-parked entries are cached translations: a full
    flush must drop both the bookkeeping and their L2-resident lines,
    or a flush-then-continue run keeps short-circuiting walks with
    supposedly-flushed state."""
    from repro.schemes import SchemeSpec
    from repro.schemes.victima import _PARK_TAG_BASE

    process = SPEC.build_process(seed=7)
    sim = NativeSimulation(process, scheme=SchemeSpec.victima())
    trace = make_trace(SPEC, NSCALE)
    sim.run(trace, warmup=0, init_order=SPEC.init_order)
    parked = dict(sim.scheme._parked)
    assert parked, "the run should have parked some L2-TLB victims"

    sim.flush_translation_state()
    assert not sim.scheme._parked
    assert all(not sim.hierarchy.l2.contains(_PARK_TAG_BASE | vpn)
               for vpn in parked)

    # A continued run cannot probe-hit flushed state before re-parking:
    # the very first TLB miss after the flush must walk.
    hits_before = sim.scheme.stats["probe_hits"]
    sim.run(trace[:1], warmup=0, populate=False)
    assert sim.scheme.stats["probe_hits"] == hits_before
