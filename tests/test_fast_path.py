"""Fast-path parity suite: the array-backed rewrite is byte-identical.

Golden values were captured from the dict-backed simulators as they
stood before the array/batched hot-path rewrite (PR 2 tree, commit
832752f): same workloads, scales and seeds.  Every scenario below —
all four schemes, native and virtualized, clustered/infinite TLBs,
warmup boundaries (including mid-streak), co-runner colocation and
synthetic same-page streaks — must reproduce those SimStats exactly,
whichever of the three execution paths (fully inlined sweep, batched
run loop, scalar fallback) it lands on.  Any drift here means the hot
path changed behaviour, not just speed.
"""

import dataclasses

import numpy as np
import pytest

from repro.core import config as cfg
from repro.params import DEFAULT_MACHINE, TlbHierarchyParams, TlbParams
from repro.schemes import SchemeSpec
from repro.sim.runner import (
    Scale,
    _corunner,
    build_vm,
    make_trace,
    run_native,
    run_virtualized,
)
from repro.sim.simulator import NativeSimulation
from repro.sim.virt import VirtualizedSimulation
from repro.workloads.suite import get

FIELDS = ("accesses", "cycles", "base_cycles", "data_cycles",
          "walk_cycles", "walks", "tlb_l1_hits", "tlb_l2_hits",
          "prefetches_issued", "prefetches_useful",
          "prefetches_dropped")

NSCALE = Scale(trace_length=6_000, warmup=1_000, seed=7)
VSCALE = Scale(trace_length=4_000, warmup=800, seed=7)

#: tag -> (SimStats fields tuple, sorted scheme_stats items).
GOLDEN = {
    "allsame-native": (
        (400, 2400, 800, 1600, 0, 0, 400, 0, 0, 0, 0),
        (),
    ),
    "native-5level-baseline": (
        (5000, 1172564, 10000, 576386, 586178, 3610, 168, 1222, 0, 0, 0),
        (),
    ),
    "native-asap": (
        (5000, 1075029, 10000, 576302, 488727, 3610, 168, 1222, 8752, 8752, 0),
        (('prefetches_issued', 8752), ('prefetches_useful', 8752), ('wasted_on_hole', 0)),
    ),
    "native-baseline": (
        (5000, 1172312, 10000, 576554, 585758, 3610, 168, 1222, 0, 0, 0),
        (),
    ),
    "native-bfs-asap": (
        (5000, 1008867, 10000, 513111, 485756, 2949, 686, 1365, 7172, 7172, 0),
        (('prefetches_issued', 7172), ('prefetches_useful', 7172), ('wasted_on_hole', 0)),
    ),
    "native-clustered-asap": (
        (5000, 1067543, 10000, 575978, 481565, 3158, 168, 1674, 7766, 7766, 0),
        (('prefetches_issued', 7766), ('prefetches_useful', 7766), ('wasted_on_hole', 0)),
    ),
    "native-clustered-baseline": (
        (5000, 1162374, 10000, 576278, 576096, 3151, 168, 1681, 0, 0, 0),
        (),
    ),
    "native-coloc-asap": (
        (5000, 1136855, 10000, 615594, 511261, 3610, 168, 1222, 8752, 8752, 0),
        (('prefetches_issued', 8752), ('prefetches_useful', 8752), ('wasted_on_hole', 0)),
    ),
    "native-coloc-baseline": (
        (5000, 1288560, 10000, 615398, 663162, 3610, 168, 1222, 0, 0, 0),
        (),
    ),
    "native-coloc-victima": (
        (5000, 1284894, 10000, 615762, 659132, 3457, 168, 1222, 0, 0, 0),
        (('parked', 3649), ('parked_lost_to_data', 572), ('probe_hits', 167), ('probe_misses', 4250)),
    ),
    "native-infinite-baseline": (
        (5000, 578482, 10000, 568482, 0, 0, 5000, 0, 0, 0, 0),
        (),
    ),
    "native-mcf-baseline": (
        (5000, 669379, 10000, 478966, 180413, 2649, 752, 1599, 0, 0, 0),
        (),
    ),
    "native-revelator": (
        (5000, 709062, 10000, 577578, 121484, 3610, 168, 1222, 0, 0, 0),
        (('correct', 3701), ('mispredicts', 716), ('speculations', 4417)),
    ),
    "native-victima": (
        (5000, 1176568, 10000, 579986, 586582, 3070, 168, 1222, 0, 0, 0),
        (('parked', 3649), ('parked_lost_to_data', 180), ('probe_hits', 559), ('probe_misses', 3858)),
    ),
    "native-warmup0-baseline": (
        (6000, 1525044, 12000, 728590, 784454, 4417, 212, 1371, 0, 0, 0),
        (),
    ),
    "streak-native-asap": (
        (5000, 356689, 10000, 191295, 155394, 955, 3799, 246, 2324, 2324, 0),
        (('prefetches_issued', 2324), ('prefetches_useful', 2324), ('wasted_on_hole', 0)),
    ),
    "streak-native-baseline": (
        (5000, 405745, 10000, 191315, 204430, 955, 3799, 246, 0, 0, 0),
        (),
    ),
    "streak-native-clustered": (
        (5000, 404221, 10000, 191283, 202938, 859, 3799, 342, 0, 0, 0),
        (),
    ),
    "streak-native-coloc": (
        (5000, 437501, 10000, 200123, 227378, 955, 3799, 246, 0, 0, 0),
        (),
    ),
    "streak-native-infinite": (
        (5000, 200663, 10000, 190663, 0, 0, 5000, 0, 0, 0, 0),
        (),
    ),
    "streak-native-nocollect": (
        (5000, 405745, 10000, 191315, 204430, 955, 3799, 246, 0, 0, 0),
        (),
    ),
    "streak-native-revelator": (
        (5000, 240803, 10000, 191451, 39352, 955, 3799, 246, 0, 0, 0),
        (('correct', 988), ('mispredicts', 187), ('speculations', 1175)),
    ),
    "streak-native-victima": (
        (5000, 405637, 10000, 191371, 204266, 909, 3799, 246, 0, 0, 0),
        (('parked', 440), ('parked_lost_to_data', 0), ('probe_hits', 46), ('probe_misses', 1129)),
    ),
    "streak-native-warmup-mid": (
        (4999, 405351, 9998, 191124, 204229, 954, 3799, 246, 0, 0, 0),
        (),
    ),
    "streak-native-warmup-mid2": (
        (4997, 405339, 9994, 191116, 204229, 954, 3797, 246, 0, 0, 0),
        (),
    ),
    "streak-native-warmup0": (
        (6000, 519411, 12000, 236487, 270924, 1175, 4563, 262, 0, 0, 0),
        (),
    ),
    "streak-virt-asap": (
        (3200, 285868, 6400, 125379, 154089, 615, 2427, 158, 6906, 6906, 0),
        (('prefetches_issued', 6906), ('prefetches_useful', 6906), ('wasted_on_hole', 0)),
    ),
    "streak-virt-baseline": (
        (3200, 314973, 6400, 125159, 183414, 615, 2427, 158, 0, 0, 0),
        (),
    ),
    "streak-virt-coloc": (
        (3200, 350841, 6400, 130475, 213966, 615, 2427, 158, 0, 0, 0),
        (),
    ),
    "streak-virt-revelator": (
        (3200, 168740, 6400, 125183, 37157, 615, 2427, 158, 0, 0, 0),
        (('correct', 670), ('mispredicts', 133), ('speculations', 803)),
    ),
    "streak-virt-warmup-mid": (
        (3199, 314967, 6398, 125155, 183414, 615, 2427, 157, 0, 0, 0),
        (),
    ),
    "tiny-native-1rec": (
        (1, 959, 2, 191, 766, 1, 0, 0, 0, 0, 0),
        (),
    ),
    "tiny-native-3rec-samepage": (
        (3, 971, 6, 199, 766, 1, 2, 0, 0, 0, 0),
        (),
    ),
    "tiny-native-run-to-end": (
        (5000, 35714, 10000, 21496, 4218, 8, 4992, 0, 0, 0, 0),
        (),
    ),
    "virt-asap": (
        (3200, 878143, 6400, 389464, 482279, 2328, 115, 757, 25618, 25618, 0),
        (('prefetches_issued', 25618), ('prefetches_useful', 25618), ('wasted_on_hole', 0)),
    ),
    "virt-baseline": (
        (3200, 984727, 6400, 389136, 589191, 2328, 115, 757, 0, 0, 0),
        (),
    ),
    "virt-coloc-baseline": (
        (3200, 1110007, 6400, 411680, 691927, 2328, 115, 757, 0, 0, 0),
        (),
    ),
    "virt-infinite-baseline": (
        (3200, 390564, 6400, 384164, 0, 0, 3200, 0, 0, 0, 0),
        (),
    ),
    "virt-revelator": (
        (3200, 503109, 6400, 389660, 107049, 2328, 115, 757, 0, 0, 0),
        (('correct', 2522), ('mispredicts', 466), ('speculations', 2988)),
    ),
    "virt-victima": (
        (3200, 971211, 6400, 390764, 574047, 2022, 115, 757, 0, 0, 0),
        (('parked', 2220), ('parked_lost_to_data', 58), ('probe_hits', 314), ('probe_misses', 2674)),
    ),
}
#: Figure 9 service distributions pinned for the collecting path.
SERVICE_GOLDEN = {
    "service-native-asap": {
        "1": {'L1': 3577, 'L2': 13, 'L3': 7, 'MEM': 13},
        "2": {'L1': 3070, 'L2': 35, 'L3': 12, 'MEM': 12, 'PWC': 481},
        "3": {'L1': 1469, 'L2': 32, 'L3': 2, 'PWC': 2107},
        "4": {'PWC': 3610},
    },
    "service-native-baseline": {
        "1": {'L1': 229, 'L2': 756, 'L3': 186, 'MEM': 2439},
        "2": {'L1': 1347, 'L2': 1370, 'L3': 77, 'MEM': 335, 'PWC': 481},
        "3": {'L1': 1469, 'L2': 31, 'L3': 3, 'PWC': 2107},
        "4": {'PWC': 3610},
    },
    "service-virt-asap": {
        "g1": {'L1': 2307, 'L2': 7, 'L3': 4, 'MEM': 10},
        "g2": {'L1': 2008, 'L2': 17, 'L3': 9, 'MEM': 10, 'PWC': 284},
        "g3": {'L1': 916, 'L2': 49, 'L3': 1, 'MEM': 1, 'PWC': 1361},
        "g4": {'PWC': 2328},
        "h1": {'L1': 7667},
        "h2": {'L1': 2402, 'PWC': 5265},
        "h3": {'L1': 1432, 'L2': 136, 'L3': 2, 'PWC': 6097},
        "h4": {'PWC': 7667},
    },
}

def _assert_golden(tag, stats):
    got = (tuple(int(getattr(stats, field)) for field in FIELDS),
           tuple(sorted(stats.scheme_stats.items())))
    assert got == GOLDEN[tag], (
        f"{tag}: stats drifted from the pre-rewrite simulators: "
        f"{dict(zip(FIELDS, got[0]))}, scheme_stats={dict(got[1])}")


SPEC = get("mc80")


def native_sim(*, config=cfg.BASELINE, scheme=None, clustered=False,
               infinite=False, coloc=False, kernel="scalar", machine=None):
    process = SPEC.build_process(asap_levels=config.native_levels, seed=7)
    extra = {} if machine is None else {"machine": machine}
    return NativeSimulation(
        process, asap=config, clustered_tlb=clustered, infinite_tlb=infinite,
        corunner=_corunner(NSCALE) if coloc else None, scheme=scheme,
        kernel=kernel, **extra)


def run_native_trace(trace, warmup, *, collect=True, **sim_kwargs):
    sim = native_sim(**sim_kwargs)
    return sim.run(trace, warmup=warmup, collect_service=collect,
                   init_order=SPEC.init_order)


def virt_sim(*, config=cfg.BASELINE, scheme=None, coloc=False,
             kernel="scalar"):
    vm = build_vm(SPEC, config, VSCALE)
    return VirtualizedSimulation(
        vm, asap=config, corunner=_corunner(VSCALE) if coloc else None,
        scheme=scheme, kernel=kernel)


def run_virt_trace(trace, warmup, **sim_kwargs):
    sim = virt_sim(**sim_kwargs)
    return sim.run(trace, warmup=warmup, init_order=SPEC.init_order)


@pytest.fixture(scope="module")
def ntrace():
    return make_trace(SPEC, NSCALE)


@pytest.fixture(scope="module")
def vtrace():
    return make_trace(SPEC, VSCALE)


class TestRunnerParity:
    """Runner-level scenarios: every scheme, mode and TLB variant."""

    def test_native_baseline(self):
        _assert_golden("native-baseline",
                       run_native("mc80", cfg.BASELINE, scale=NSCALE))

    def test_native_asap(self):
        _assert_golden("native-asap",
                       run_native("mc80", cfg.P1_P2, scale=NSCALE))

    def test_native_victima(self):
        _assert_golden("native-victima",
                       run_native("mc80", scale=NSCALE,
                                  scheme=SchemeSpec.victima()))

    def test_native_revelator(self):
        _assert_golden("native-revelator",
                       run_native("mc80", scale=NSCALE,
                                  scheme=SchemeSpec.revelator()))

    def test_native_clustered_baseline(self):
        _assert_golden("native-clustered-baseline",
                       run_native("mc80", cfg.BASELINE, clustered_tlb=True,
                                  scale=NSCALE))

    def test_native_clustered_asap(self):
        _assert_golden("native-clustered-asap",
                       run_native("mc80", cfg.P1_P2, clustered_tlb=True,
                                  scale=NSCALE))

    def test_native_infinite_baseline(self):
        _assert_golden("native-infinite-baseline",
                       run_native("mc80", cfg.BASELINE, infinite_tlb=True,
                                  scale=NSCALE))

    def test_native_colocated_baseline(self):
        _assert_golden("native-coloc-baseline",
                       run_native("mc80", cfg.BASELINE, colocated=True,
                                  scale=NSCALE))

    def test_native_colocated_asap(self):
        _assert_golden("native-coloc-asap",
                       run_native("mc80", cfg.P1_P2, colocated=True,
                                  scale=NSCALE))

    def test_native_colocated_victima(self):
        _assert_golden("native-coloc-victima",
                       run_native("mc80", colocated=True, scale=NSCALE,
                                  scheme=SchemeSpec.victima()))

    def test_native_no_warmup(self):
        _assert_golden("native-warmup0-baseline",
                       run_native("mc80", cfg.BASELINE,
                                  scale=Scale(6_000, 0, 7)))

    def test_native_five_level(self):
        _assert_golden("native-5level-baseline",
                       run_native("mc80", cfg.BASELINE, pt_levels=5,
                                  scale=NSCALE))

    def test_other_workloads(self):
        _assert_golden("native-mcf-baseline",
                       run_native("mcf", cfg.BASELINE, scale=NSCALE))
        _assert_golden("native-bfs-asap",
                       run_native("bfs", cfg.P1_P2, scale=NSCALE))

    def test_virtualized_baseline(self):
        _assert_golden("virt-baseline",
                       run_virtualized("mc80", cfg.BASELINE, scale=VSCALE))

    def test_virtualized_asap(self):
        _assert_golden("virt-asap",
                       run_virtualized("mc80", cfg.FULL_2D, scale=VSCALE))

    def test_virtualized_victima(self):
        _assert_golden("virt-victima",
                       run_virtualized("mc80", scale=VSCALE,
                                       scheme=SchemeSpec.victima()))

    def test_virtualized_revelator(self):
        _assert_golden("virt-revelator",
                       run_virtualized("mc80", scale=VSCALE,
                                       scheme=SchemeSpec.revelator()))

    def test_virtualized_infinite(self):
        _assert_golden("virt-infinite-baseline",
                       run_virtualized("mc80", cfg.BASELINE,
                                       infinite_tlb=True, scale=VSCALE))

    def test_virtualized_colocated(self):
        _assert_golden("virt-coloc-baseline",
                       run_virtualized("mc80", cfg.BASELINE, colocated=True,
                                       scale=VSCALE))


class TestStreakParity:
    """Synthetic same-page streaks drive the batched/bulk path."""

    def test_baseline(self, ntrace):
        streaky = np.repeat(ntrace[:1500], 4)
        _assert_golden("streak-native-baseline",
                       run_native_trace(streaky, 1000))

    def test_warmup_lands_mid_streak(self, ntrace):
        streaky = np.repeat(ntrace[:1500], 4)
        _assert_golden("streak-native-warmup-mid",
                       run_native_trace(streaky, 1001))
        _assert_golden("streak-native-warmup-mid2",
                       run_native_trace(streaky, 1003))

    def test_no_warmup(self, ntrace):
        streaky = np.repeat(ntrace[:1500], 4)
        _assert_golden("streak-native-warmup0", run_native_trace(streaky, 0))

    def test_schemes(self, ntrace):
        streaky = np.repeat(ntrace[:1500], 4)
        _assert_golden("streak-native-asap",
                       run_native_trace(streaky, 1000, config=cfg.P1_P2))
        _assert_golden("streak-native-victima",
                       run_native_trace(streaky, 1000,
                                        scheme=SchemeSpec.victima()))
        _assert_golden("streak-native-revelator",
                       run_native_trace(streaky, 1000,
                                        scheme=SchemeSpec.revelator()))

    def test_tlb_variants(self, ntrace):
        streaky = np.repeat(ntrace[:1500], 4)
        _assert_golden("streak-native-clustered",
                       run_native_trace(streaky, 1000, clustered=True))
        _assert_golden("streak-native-infinite",
                       run_native_trace(streaky, 1000, infinite=True))

    def test_corunner_forces_scalar(self, ntrace):
        streaky = np.repeat(ntrace[:1500], 4)
        _assert_golden("streak-native-coloc",
                       run_native_trace(streaky, 1000, coloc=True))

    def test_without_service_collection(self, ntrace):
        streaky = np.repeat(ntrace[:1500], 4)
        _assert_golden("streak-native-nocollect",
                       run_native_trace(streaky, 1000, collect=False))

    def test_virtualized(self, vtrace):
        streaky = np.repeat(vtrace[:1000], 4)
        _assert_golden("streak-virt-baseline", run_virt_trace(streaky, 800))
        _assert_golden("streak-virt-warmup-mid",
                       run_virt_trace(streaky, 801))

    def test_virtualized_schemes(self, vtrace):
        streaky = np.repeat(vtrace[:1000], 4)
        _assert_golden("streak-virt-asap",
                       run_virt_trace(streaky, 800, config=cfg.FULL_2D))
        _assert_golden("streak-virt-revelator",
                       run_virt_trace(streaky, 800,
                                      scheme=SchemeSpec.revelator()))

    def test_virtualized_corunner(self, vtrace):
        streaky = np.repeat(vtrace[:1000], 4)
        _assert_golden("streak-virt-coloc",
                       run_virt_trace(streaky, 800, coloc=True))


class TestTinyTraces:
    """Traces shorter than (or exactly) one streak batch."""

    def test_single_record(self, ntrace):
        _assert_golden("tiny-native-1rec", run_native_trace(ntrace[:1], 0))

    def test_three_records_same_page(self, ntrace):
        _assert_golden("tiny-native-3rec-samepage",
                       run_native_trace(np.repeat(ntrace[:1], 3), 0))

    def test_run_extends_to_trace_end(self, ntrace):
        _assert_golden("tiny-native-run-to-end",
                       run_native_trace(np.repeat(ntrace[:10], 600), 1000))

    def test_whole_trace_one_page(self, ntrace):
        trace = np.full(500, int(ntrace[0]), dtype=ntrace.dtype)
        _assert_golden("allsame-native", run_native_trace(trace, 100))

    def test_empty_trace(self, ntrace):
        stats = run_native_trace(ntrace[:0], 0)
        assert stats.accesses == 0
        assert stats.cycles == 0
        assert stats.walks == 0


class TestPathDispatch:
    """The right execution path runs for the right configuration."""

    def test_plain_baseline_uses_fast_sweep(self, ntrace, monkeypatch):
        sim = native_sim()
        called = []
        original = sim._fast_native_sweep

        def spy(*args, **kwargs):
            called.append(True)
            return original(*args, **kwargs)

        monkeypatch.setattr(sim, "_fast_native_sweep", spy)
        sim.run(ntrace, warmup=1000, init_order=SPEC.init_order)
        assert called, "plain baseline run must take the inlined sweep"

    def test_corunner_disables_fast_sweep(self, ntrace, monkeypatch):
        sim = native_sim(coloc=True)

        def forbidden(*args, **kwargs):  # pragma: no cover - guard
            raise AssertionError("co-runner run must stay scalar")

        monkeypatch.setattr(sim, "_fast_native_sweep", forbidden)
        sim.run(ntrace[:2000], warmup=400, init_order=SPEC.init_order)

    def test_streaks_disable_fast_sweep(self, ntrace, monkeypatch):
        sim = native_sim()
        streaky = np.repeat(ntrace[:500], 4)

        def forbidden(*args, **kwargs):  # pragma: no cover - guard
            raise AssertionError("streaky traces go through the run loop")

        monkeypatch.setattr(sim, "_fast_native_sweep", forbidden)
        sim.run(streaky, warmup=400, init_order=SPEC.init_order)

    def test_scheme_hooks_disable_fast_sweep(self, ntrace, monkeypatch):
        sim = native_sim(scheme=SchemeSpec.victima())

        def forbidden(*args, **kwargs):  # pragma: no cover - guard
            raise AssertionError("scheme hooks must use the general loop")

        monkeypatch.setattr(sim, "_fast_native_sweep", forbidden)
        sim.run(ntrace[:2000], warmup=400, init_order=SPEC.init_order)


class TestServiceParity:
    """Per-PT-level service distributions (Figure 9) stay pinned too."""

    def _distribution(self, stats):
        return {str(level): dict(sorted(stats.service._counts[level].items()))
                for level in stats.service._counts}

    @pytest.mark.parametrize("kernel", ("scalar", "columnar"))
    def test_native_baseline(self, kernel):
        stats = run_native("mc80", cfg.BASELINE, scale=NSCALE,
                           kernel=kernel)
        assert self._distribution(stats) == SERVICE_GOLDEN[
            "service-native-baseline"]

    @pytest.mark.parametrize("kernel", ("scalar", "columnar"))
    def test_native_asap(self, kernel):
        stats = run_native("mc80", cfg.P1_P2, scale=NSCALE, kernel=kernel)
        assert self._distribution(stats) == SERVICE_GOLDEN[
            "service-native-asap"]

    @pytest.mark.parametrize("kernel", ("scalar", "columnar"))
    def test_virtualized_asap(self, kernel):
        stats = run_virtualized("mc80", cfg.FULL_2D, scale=VSCALE,
                                kernel=kernel)
        assert self._distribution(stats) == SERVICE_GOLDEN[
            "service-virt-asap"]


# ----------------------------------------------------------------------
# columnar kernel parity: every golden scenario, other engine
# ----------------------------------------------------------------------
def _streaky(nt):
    return np.repeat(nt[:1500], 4)


def _vstreaky(vt):
    return np.repeat(vt[:1000], 4)


#: tag -> callable(ntrace, vtrace, kernel) reproducing the golden cell.
COLUMNAR_SCENARIOS = {
    "allsame-native": lambda nt, vt, k: run_native_trace(
        np.full(500, int(nt[0]), dtype=nt.dtype), 100, kernel=k),
    "native-5level-baseline": lambda nt, vt, k: run_native(
        "mc80", cfg.BASELINE, pt_levels=5, scale=NSCALE, kernel=k),
    "native-asap": lambda nt, vt, k: run_native(
        "mc80", cfg.P1_P2, scale=NSCALE, kernel=k),
    "native-baseline": lambda nt, vt, k: run_native(
        "mc80", cfg.BASELINE, scale=NSCALE, kernel=k),
    "native-bfs-asap": lambda nt, vt, k: run_native(
        "bfs", cfg.P1_P2, scale=NSCALE, kernel=k),
    "native-clustered-asap": lambda nt, vt, k: run_native(
        "mc80", cfg.P1_P2, clustered_tlb=True, scale=NSCALE, kernel=k),
    "native-clustered-baseline": lambda nt, vt, k: run_native(
        "mc80", cfg.BASELINE, clustered_tlb=True, scale=NSCALE, kernel=k),
    "native-coloc-asap": lambda nt, vt, k: run_native(
        "mc80", cfg.P1_P2, colocated=True, scale=NSCALE, kernel=k),
    "native-coloc-baseline": lambda nt, vt, k: run_native(
        "mc80", cfg.BASELINE, colocated=True, scale=NSCALE, kernel=k),
    "native-coloc-victima": lambda nt, vt, k: run_native(
        "mc80", colocated=True, scale=NSCALE,
        scheme=SchemeSpec.victima(), kernel=k),
    "native-infinite-baseline": lambda nt, vt, k: run_native(
        "mc80", cfg.BASELINE, infinite_tlb=True, scale=NSCALE, kernel=k),
    "native-mcf-baseline": lambda nt, vt, k: run_native(
        "mcf", cfg.BASELINE, scale=NSCALE, kernel=k),
    "native-revelator": lambda nt, vt, k: run_native(
        "mc80", scale=NSCALE, scheme=SchemeSpec.revelator(), kernel=k),
    "native-victima": lambda nt, vt, k: run_native(
        "mc80", scale=NSCALE, scheme=SchemeSpec.victima(), kernel=k),
    "native-warmup0-baseline": lambda nt, vt, k: run_native(
        "mc80", cfg.BASELINE, scale=Scale(6_000, 0, 7), kernel=k),
    "streak-native-asap": lambda nt, vt, k: run_native_trace(
        _streaky(nt), 1000, config=cfg.P1_P2, kernel=k),
    "streak-native-baseline": lambda nt, vt, k: run_native_trace(
        _streaky(nt), 1000, kernel=k),
    "streak-native-clustered": lambda nt, vt, k: run_native_trace(
        _streaky(nt), 1000, clustered=True, kernel=k),
    "streak-native-coloc": lambda nt, vt, k: run_native_trace(
        _streaky(nt), 1000, coloc=True, kernel=k),
    "streak-native-infinite": lambda nt, vt, k: run_native_trace(
        _streaky(nt), 1000, infinite=True, kernel=k),
    "streak-native-nocollect": lambda nt, vt, k: run_native_trace(
        _streaky(nt), 1000, collect=False, kernel=k),
    "streak-native-revelator": lambda nt, vt, k: run_native_trace(
        _streaky(nt), 1000, scheme=SchemeSpec.revelator(), kernel=k),
    "streak-native-victima": lambda nt, vt, k: run_native_trace(
        _streaky(nt), 1000, scheme=SchemeSpec.victima(), kernel=k),
    "streak-native-warmup-mid": lambda nt, vt, k: run_native_trace(
        _streaky(nt), 1001, kernel=k),
    "streak-native-warmup-mid2": lambda nt, vt, k: run_native_trace(
        _streaky(nt), 1003, kernel=k),
    "streak-native-warmup0": lambda nt, vt, k: run_native_trace(
        _streaky(nt), 0, kernel=k),
    "streak-virt-asap": lambda nt, vt, k: run_virt_trace(
        _vstreaky(vt), 800, config=cfg.FULL_2D, kernel=k),
    "streak-virt-baseline": lambda nt, vt, k: run_virt_trace(
        _vstreaky(vt), 800, kernel=k),
    "streak-virt-coloc": lambda nt, vt, k: run_virt_trace(
        _vstreaky(vt), 800, coloc=True, kernel=k),
    "streak-virt-revelator": lambda nt, vt, k: run_virt_trace(
        _vstreaky(vt), 800, scheme=SchemeSpec.revelator(), kernel=k),
    "streak-virt-warmup-mid": lambda nt, vt, k: run_virt_trace(
        _vstreaky(vt), 801, kernel=k),
    "tiny-native-1rec": lambda nt, vt, k: run_native_trace(
        nt[:1], 0, kernel=k),
    "tiny-native-3rec-samepage": lambda nt, vt, k: run_native_trace(
        np.repeat(nt[:1], 3), 0, kernel=k),
    "tiny-native-run-to-end": lambda nt, vt, k: run_native_trace(
        np.repeat(nt[:10], 600), 1000, kernel=k),
    "virt-asap": lambda nt, vt, k: run_virtualized(
        "mc80", cfg.FULL_2D, scale=VSCALE, kernel=k),
    "virt-baseline": lambda nt, vt, k: run_virtualized(
        "mc80", cfg.BASELINE, scale=VSCALE, kernel=k),
    "virt-coloc-baseline": lambda nt, vt, k: run_virtualized(
        "mc80", cfg.BASELINE, colocated=True, scale=VSCALE, kernel=k),
    "virt-infinite-baseline": lambda nt, vt, k: run_virtualized(
        "mc80", cfg.BASELINE, infinite_tlb=True, scale=VSCALE, kernel=k),
    "virt-revelator": lambda nt, vt, k: run_virtualized(
        "mc80", scale=VSCALE, scheme=SchemeSpec.revelator(), kernel=k),
    "virt-victima": lambda nt, vt, k: run_virtualized(
        "mc80", scale=VSCALE, scheme=SchemeSpec.victima(), kernel=k),
}


class TestColumnarGoldenParity:
    """The columnar chunk kernel against the same pinned goldens.

    The goldens above are the scalar oracle; every scenario — engaged
    C kernel and documented scalar fallbacks alike — must land on the
    identical numbers under ``kernel="columnar"``."""

    def test_covers_every_golden(self):
        assert set(COLUMNAR_SCENARIOS) == set(GOLDEN)

    @pytest.mark.parametrize("tag", sorted(GOLDEN))
    def test_matches_golden(self, tag, ntrace, vtrace, monkeypatch):
        monkeypatch.setenv("REPRO_REQUIRE_CCORE", "1")
        _assert_golden(tag,
                       COLUMNAR_SCENARIOS[tag](ntrace, vtrace, "columnar"))


# ----------------------------------------------------------------------
# degenerate geometries, pinned for both kernels
# ----------------------------------------------------------------------
DEGENERATE_GOLDEN = {
    "degenerate-native-allmiss": (
        (3678, 1446170, 7356, 702498, 736316, 3678, 0, 0, 0, 0, 0),
        (),
    ),
    "degenerate-native-1set-tlb": (
        (2000, 550201, 4000, 259515, 286686, 1963, 7, 30, 0, 0, 0),
        (),
    ),
}


class TestDegenerateGoldens:
    """Length-1 traces, all-miss traces and single-set TLBs: the edge
    geometries where off-by-ones in set masking, warmup handling or LRU
    guard slots would surface first.  Pinned for both kernels."""

    def _assert_degenerate(self, tag, stats):
        got = (tuple(int(getattr(stats, field)) for field in FIELDS),
               tuple(sorted(stats.scheme_stats.items())))
        assert got == DEGENERATE_GOLDEN[tag], (
            f"{tag}: {dict(zip(FIELDS, got[0]))}")

    @pytest.mark.parametrize("kernel", ("scalar", "columnar"))
    def test_length_one_trace(self, ntrace, kernel):
        _assert_golden("tiny-native-1rec",
                       run_native_trace(ntrace[:1], 0, kernel=kernel))

    @pytest.mark.parametrize("kernel", ("scalar", "columnar"))
    def test_all_miss_trace(self, ntrace, kernel):
        # Every record touches a distinct page exactly once: no run
        # batching, no TLB reuse — every access walks.
        pages = np.unique(ntrace >> 12)
        trace = (pages << 12).astype(np.int64)
        self._assert_degenerate(
            "degenerate-native-allmiss",
            run_native_trace(trace, 0, kernel=kernel))

    @pytest.mark.parametrize("kernel", ("scalar", "columnar"))
    def test_single_set_tlb(self, ntrace, kernel):
        machine = dataclasses.replace(
            DEFAULT_MACHINE,
            tlb=TlbHierarchyParams(l1=TlbParams(entries=4, ways=4),
                                   l2=TlbParams(entries=16, ways=16)))
        self._assert_degenerate(
            "degenerate-native-1set-tlb",
            run_native_trace(ntrace[:2500], 500, kernel=kernel,
                             machine=machine))
