"""Unit tests for ASAP range registers / VMA descriptors."""

import pytest

from repro.core.range_registers import RangeRegisterFile, VmaDescriptor
from repro.pagetable.constants import level_shift

MB = 1 << 20


def descriptor(start, size, bases=((1, 0),)):
    return VmaDescriptor(start=start, end=start + size, level_bases=bases)


def test_lookup_hit_and_miss():
    rrf = RangeRegisterFile()
    d = descriptor(0x1000_0000, 16 * MB)
    rrf.load([d])
    assert rrf.lookup(0x1000_0000) is d
    assert rrf.lookup(0x1000_0000 + 16 * MB) is None
    assert rrf.hits == 1
    assert rrf.misses == 1


def test_lookup_between_descriptors_misses():
    rrf = RangeRegisterFile()
    rrf.load([descriptor(0x1000_0000, MB), descriptor(0x3000_0000, MB)])
    assert rrf.lookup(0x2000_0000) is None


def test_capacity_keeps_largest_vmas():
    rrf = RangeRegisterFile(capacity=2)
    small = [descriptor(i * 0x1000_0000, MB) for i in range(4)]
    big = descriptor(0x7000_0000_0000, 100 * MB)
    rrf.load(small + [big])
    assert len(rrf) == 2
    assert rrf.lookup(0x7000_0000_0000) is big


def test_overlapping_descriptors_rejected():
    rrf = RangeRegisterFile()
    with pytest.raises(ValueError):
        rrf.load([descriptor(0, 2 * MB), descriptor(MB, 2 * MB)])


def test_entry_addr_base_plus_offset():
    base1 = 0x10_0000_0000
    base2 = 0x20_0000_0000
    d = descriptor(0, 1 << 30, bases=((1, base1), (2, base2)))
    va = 0x1234_5000
    assert d.entry_addr(va, 1) == base1 + (va >> level_shift(1)) * 8
    assert d.entry_addr(va, 2) == base2 + (va >> level_shift(2)) * 8
    assert d.entry_addr(va, 3) is None  # no base for PL3


def test_entry_addrs_are_sorted_with_va():
    """Sorted order (footnote 1 of the paper): va_x < va_y implies the PL1
    entry of x sits at a lower physical address than that of y."""
    d = descriptor(0, 1 << 30, bases=((1, 1 << 40),))
    addrs = [d.entry_addr(va, 1) for va in range(0, 1 << 30, 1 << 21)]
    assert addrs == sorted(addrs)


def test_levels_property():
    d = descriptor(0, MB, bases=((1, 0), (2, 0)))
    assert d.levels == (1, 2)


def test_coverage_bytes():
    rrf = RangeRegisterFile()
    rrf.load([descriptor(0, MB), descriptor(1 << 40, 3 * MB)])
    assert rrf.coverage_bytes == 4 * MB


def test_capacity_validation():
    with pytest.raises(ValueError):
        RangeRegisterFile(capacity=0)
