"""Randomized differential tests: columnar chunk kernel vs scalar oracle.

The compiled columnar kernel (`repro.sim.columnar`) re-implements the
simulators' scalar record loop in C; the scalar loop is the *oracle* and
every statistic, service distribution and structure image must match it
byte for byte.  These tests drive both engines through the same cells —
every scheme of the comparison roster, native and virtualized,
single- and multi-tenant, chunk sizes down to one record with warmup
boundaries landing on and around chunk seams — and compare whole
``SimStats`` values (``ServiceDistribution`` has value equality, so
``==`` covers the Figure 9 distributions too).

Where the columnar engine's preconditions hold (plain baseline, native
asap, native victima; no co-runner, standard TLBs) the suite also
asserts the C kernel actually *engaged*, with ``REPRO_REQUIRE_CCORE=1``
making a silent fallback an error; revelator/corunner cells exercise
the documented wholesale fallback instead.  The scheme-state seam tests
pin the hardest part of the compiled scheme paths: in-flight prefetch
MSHRs and the parked-victim pool must round-trip through the per-chunk
writeback/reload exactly, even when every record lands on its own seam.
"""

from __future__ import annotations

import random

import pytest

from repro.experiments.common import SCHEMES
from repro.sim import columnar
from repro.sim.multitenant import MultiTenantSpec, run_native_mt, \
    run_virtualized_mt
from repro.sim.runner import Scale, run_native, run_virtualized
from repro.sim.simulator import NativeSimulation
from repro.traces.source import ArraySource
from repro.workloads.suite import get as get_workload

pytestmark = pytest.mark.skipif(
    not columnar.columnar_available(),
    reason="no C compiler/cffi for the columnar backend")

SCALE = Scale(trace_length=6_000, warmup=1_200, seed=11)

SCHEME_NAMES = ("baseline", "asap", "victima", "revelator")


def _native_pair(name: str, **kwargs):
    entry = SCHEMES[name]
    return [
        run_native("mc80", entry.native_config, scheme=entry.spec,
                   scale=SCALE, kernel=kernel, **kwargs)
        for kernel in ("scalar", "columnar")
    ]


def _virt_pair(name: str):
    entry = SCHEMES[name]
    return [
        run_virtualized("mc80", entry.virt_config, scheme=entry.spec,
                        scale=SCALE, kernel=kernel)
        for kernel in ("scalar", "columnar")
    ]


# ----------------------------------------------------------------------
# scheme roster, native and virtualized
# ----------------------------------------------------------------------
@pytest.mark.parametrize("name", SCHEME_NAMES)
def test_native_schemes_differential(name, monkeypatch):
    # Baseline, asap and victima cells must run the C kernel (the
    # differential point of the test); revelator exercises the
    # wholesale scalar fallback.
    if name != "revelator":
        monkeypatch.setenv("REPRO_REQUIRE_CCORE", "1")
    scalar, col = _native_pair(name)
    assert scalar == col
    assert scalar.service._counts == col.service._counts


@pytest.mark.parametrize("name", ("baseline", "asap"))
def test_virtualized_schemes_differential(name):
    scalar, col = _virt_pair(name)
    assert scalar == col


def test_native_corunner_falls_back_identically():
    scalar, col = _native_pair("baseline", colocated=True)
    assert scalar == col


def test_native_clustered_tlb_falls_back_identically():
    scalar, col = _native_pair("baseline", clustered_tlb=True)
    assert scalar == col


# ----------------------------------------------------------------------
# chunk seams: tiny chunks, warmup on and around the boundaries
# ----------------------------------------------------------------------
@pytest.mark.parametrize("chunk_records", (1, 7, 4096))
def test_chunk_size_seams(chunk_records, monkeypatch):
    monkeypatch.setenv("REPRO_REQUIRE_CCORE", "1")
    spec = get_workload("mc80")
    length = 8_192
    trace = spec.generate_trace(length, seed=23)
    # Warmup exactly on a seam, just past one, and mid-chunk.
    for warmup in (chunk_records, chunk_records + 1, length // 3):
        results = []
        for kernel in ("scalar", "columnar"):
            source = ArraySource(trace, chunk_records=chunk_records)
            scale = Scale(trace_length=length, warmup=warmup, seed=23)
            results.append(run_native("mc80", scale=scale,
                                      trace_source=source, kernel=kernel))
        monolithic = run_native(
            "mc80", scale=Scale(trace_length=length, warmup=warmup,
                                seed=23),
            trace_source=ArraySource(trace, chunk_records=length),
            kernel="scalar")
        assert results[0] == results[1], f"warmup={warmup}"
        assert results[0] == monolithic, f"warmup={warmup}"


# ----------------------------------------------------------------------
# scheme-state chunk seams: in-flight MSHRs and the parked-victim pool
# must round-trip through the per-chunk writeback/reload exactly
# ----------------------------------------------------------------------
def _scheme_sim(name: str, kernel: str, seed: int):
    entry = SCHEMES[name]
    spec = get_workload("mc80")
    process = spec.build_process(
        asap_levels=entry.native_config.native_levels, seed=seed)
    return spec, NativeSimulation(process, asap=entry.native_config,
                                  scheme=entry.spec, kernel=kernel)


@pytest.mark.parametrize("chunk_records", (1, 64, 509))
def test_asap_inflight_mshr_straddles_seams(chunk_records, monkeypatch):
    """An MSHR allocated for a prefetch in one chunk retires or merges
    in a later one; with single-record chunks every in-flight window
    crosses a seam."""
    monkeypatch.setenv("REPRO_REQUIRE_CCORE", "1")
    length = 6_000
    spec = get_workload("mc80")
    trace = spec.generate_trace(length, seed=37)
    scale = Scale(trace_length=length, warmup=1_100, seed=37)
    runs = []
    for kernel in ("scalar", "columnar"):
        _, sim = _scheme_sim("asap", kernel, seed=scale.seed)
        stats = sim.run(ArraySource(trace, chunk_records=chunk_records),
                        warmup=scale.warmup, init_order=spec.init_order)
        runs.append((sim, stats))
    (s_sim, s_stats), (c_sim, c_stats) = runs
    assert s_stats == c_stats, f"chunk={chunk_records}"
    # The scenario is real: prefetches issued and MSHRs were allocated.
    s_pf = s_sim.scheme.walk_start_hook().__self__
    c_pf = c_sim.scheme.walk_start_hook().__self__
    assert s_pf.stats.issued > 0
    assert s_sim.hierarchy.mshrs.allocations > 0
    # Structure state, not just statistics: the prefetcher counters and
    # the in-flight MSHR file itself must match the oracle's.
    assert vars(c_pf.stats) == vars(s_pf.stats)
    assert c_sim.hierarchy.mshrs.allocations == \
        s_sim.hierarchy.mshrs.allocations
    assert c_sim.hierarchy.mshrs.merges == s_sim.hierarchy.mshrs.merges
    assert c_sim.hierarchy.mshrs._inflight == s_sim.hierarchy.mshrs._inflight


@pytest.mark.parametrize("chunk_records", (1, 64, 509))
def test_victima_parked_entry_evicted_across_seams(chunk_records,
                                                   monkeypatch):
    """A victim parked in the L2 data cache in one chunk is probed — or
    lost to a demand fill — in a later one; the parked pool, its FIFO
    order and the loss counter must survive every seam."""
    monkeypatch.setenv("REPRO_REQUIRE_CCORE", "1")
    length = 6_000
    spec = get_workload("mc80")
    trace = spec.generate_trace(length, seed=41)
    scale = Scale(trace_length=length, warmup=1_100, seed=41)
    runs = []
    for kernel in ("scalar", "columnar"):
        _, sim = _scheme_sim("victima", kernel, seed=scale.seed)
        stats = sim.run(ArraySource(trace, chunk_records=chunk_records),
                        warmup=scale.warmup, init_order=spec.init_order)
        runs.append((sim, stats))
    (s_sim, s_stats), (c_sim, c_stats) = runs
    assert s_stats == c_stats, f"chunk={chunk_records}"
    # The scenario is real: victims were parked, and at least one parked
    # entry was evicted by a demand fill after its parking chunk.
    assert s_sim.scheme.stats["parked"] > 0
    assert s_sim.scheme.stats["parked_lost_to_data"] > 0
    # Structure state: identical counters, identical pool content *and*
    # FIFO order (the order decides the next eviction victim).
    assert c_sim.scheme.stats == s_sim.scheme.stats
    assert list(c_sim.scheme._parked.items()) == \
        list(s_sim.scheme._parked.items())


# ----------------------------------------------------------------------
# randomized fuzz over (workload, length, warmup, seed)
# ----------------------------------------------------------------------
@pytest.mark.parametrize("seed", (0, 1, 2, 3))
def test_randomized_differential(seed, monkeypatch):
    monkeypatch.setenv("REPRO_REQUIRE_CCORE", "1")
    rng = random.Random(seed)
    workload = rng.choice(("mc80", "mcf"))
    length = rng.randrange(1_500, 9_000)
    warmup = rng.randrange(0, length)
    chunk = rng.choice((1, 7, 256, 4096))
    spec = get_workload(workload)
    trace = spec.generate_trace(length, seed=seed + 100)
    scale = Scale(trace_length=length, warmup=warmup, seed=seed + 100)
    context = (f"seed={seed} workload={workload} length={length} "
               f"warmup={warmup} chunk={chunk}")
    scalar, col = [
        run_native(workload, scale=scale,
                   trace_source=ArraySource(trace, chunk_records=chunk),
                   kernel=kernel)
        for kernel in ("scalar", "columnar")
    ]
    assert scalar == col, context


# ----------------------------------------------------------------------
# multi-tenant: per-quantum sections through the chunk kernel
# ----------------------------------------------------------------------
@pytest.mark.parametrize("policy", ("flush", "asid"))
def test_multitenant_native_differential(policy):
    mt = MultiTenantSpec(tenants=2, quantum=700, switch_policy=policy)
    scalar, col = [
        run_native_mt("mc80", mt=mt, scale=SCALE, kernel=kernel)
        for kernel in ("scalar", "columnar")
    ]
    assert scalar == col


@pytest.mark.parametrize("name", ("asap", "victima"))
def test_multitenant_scheme_differential(name):
    # Per-quantum sections through the scheme modes: asap engages the
    # compiled state machine per tenant; victima's park hook is wrapped
    # by the mt victim router, so those sections fall back by design.
    mt = MultiTenantSpec(tenants=2, quantum=700, switch_policy="asid")
    entry = SCHEMES[name]
    scalar, col = [
        run_native_mt("mc80", entry.native_config, mt=mt, scale=SCALE,
                      scheme=entry.spec, kernel=kernel)
        for kernel in ("scalar", "columnar")
    ]
    assert scalar == col


def test_multitenant_virtualized_differential():
    mt = MultiTenantSpec(tenants=2, quantum=900, switch_policy="asid")
    scalar, col = [
        run_virtualized_mt("mc80", mt=mt, scale=SCALE, kernel=kernel)
        for kernel in ("scalar", "columnar")
    ]
    assert scalar == col


# ----------------------------------------------------------------------
# engagement: the C kernel must actually run where its preconditions hold
# ----------------------------------------------------------------------
def test_columnar_engine_engages(monkeypatch):
    monkeypatch.setenv("REPRO_REQUIRE_CCORE", "1")
    spec = get_workload("mc80")
    trace = spec.generate_trace(4_000, seed=5)
    process = spec.build_process(seed=5)
    sim = NativeSimulation(process, kernel="columnar")
    sim.populate(trace, order=spec.init_order)
    sim.run(trace, warmup=500)
    # The path-row cache is built lazily by the C dispatch: present
    # exactly when the compiled kernel ran.
    assert sim._columnar_paths is not None


def test_scalar_kernel_never_builds_columnar_state():
    spec = get_workload("mc80")
    trace = spec.generate_trace(4_000, seed=5)
    process = spec.build_process(seed=5)
    sim = NativeSimulation(process, kernel="scalar")
    sim.populate(trace, order=spec.init_order)
    sim.run(trace, warmup=500)
    assert sim._columnar_paths is None


def test_unknown_kernel_rejected():
    spec = get_workload("mc80")
    process = spec.build_process(seed=5)
    with pytest.raises(ValueError, match="unknown simulation kernel"):
        NativeSimulation(process, kernel="simd")
