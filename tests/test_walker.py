"""Unit tests for the 1D page walker, including ASAP overlap timing."""

import pytest

from repro.mem.hierarchy import CacheHierarchy
from repro.pagetable.pwc import SplitPwc
from repro.pagetable.radix import RadixPageTable
from repro.pagetable.walker import PageWalker

VA = 0x5555_0000_0000


def make_walker():
    hierarchy = CacheHierarchy()
    pwc = SplitPwc()
    return PageWalker(hierarchy, pwc), hierarchy, pwc


def mapped_pt(va=VA, frame=99):
    pt = RadixPageTable()
    pt.map_page(va, frame=frame)
    return pt


def test_cold_walk_costs_four_memory_accesses():
    walker, _, _ = make_walker()
    path = mapped_pt().walk_path(VA)
    outcome = walker.walk(path)
    # 2 (PWC probe) + 4 * 191 (all levels from DRAM).
    assert outcome.latency == 2 + 4 * 191
    assert [lvl for lvl, _ in outcome.records] == [4, 3, 2, 1]
    assert all(served == "MEM" for _, served in outcome.records)


def test_second_walk_hits_pwc_and_l1():
    walker, _, _ = make_walker()
    pt = mapped_pt()
    walker.walk(pt.walk_path(VA))
    outcome = walker.walk(pt.walk_path(VA))
    # PWC covers PL4..PL2; the PL1 line is in the L1-D.
    assert outcome.latency == 2 + 4
    assert outcome.records[:3] == [(4, "PWC"), (3, "PWC"), (2, "PWC")]
    assert outcome.records[3] == (1, "L1")


def test_pwc_hit_at_pl3_only():
    walker, _, pwc = make_walker()
    pt = mapped_pt()
    walker.walk(pt.walk_path(VA))
    # A different PL2 entry under the same PL3 node.
    other = VA + (1 << 21)
    pt.map_page(other, frame=100)
    outcome = walker.walk(pt.walk_path(other))
    assert outcome.records[0] == (4, "PWC")
    assert outcome.records[1] == (3, "PWC")
    assert outcome.records[2][0] == 2  # PL2 walked in memory hierarchy


def test_asap_prefetch_overlaps_pl1():
    walker, hierarchy, _ = make_walker()
    pt = mapped_pt()
    path = pt.walk_path(VA)
    now = 0
    # Simulate an ASAP prefetch of the PL1 line issued at walk start.
    completion = hierarchy.prefetch_line(path.steps[-1].line, now)
    outcome = walker.walk(path, now, prefetches={1: completion})
    # PL4..PL2 still go to memory serially (2 + 3*191); PL1 completes at
    # max(t_arr + 4, 191) = t_arr + 4 because the prefetch long finished.
    assert outcome.latency == 2 + 3 * 191 + 4
    baseline = 2 + 4 * 191
    assert outcome.latency < baseline


def test_prefetch_never_hurts():
    # If the walker arrives before the prefetch completes, the level ends
    # at the prefetch completion time — identical to the no-ASAP demand
    # latency, never later.
    walker, hierarchy, pwc = make_walker()
    pt = mapped_pt()
    path = pt.walk_path(VA)
    # Warm PWC so the walk jumps straight to PL1.
    walker.walk(pt.walk_path(VA))
    hierarchy.flush()
    pwc_latency = 2
    completion = hierarchy.prefetch_line(path.steps[-1].line, 0)
    outcome = walker.walk(path, 0, prefetches={1: completion})
    # Walk = PWC probe + max(probe+4, 191) - 0.
    assert outcome.latency == max(pwc_latency + 4, completion)
    assert outcome.latency <= pwc_latency + 191


def test_walk_updates_pwc_for_next_walk():
    walker, _, pwc = make_walker()
    pt = mapped_pt()
    walker.walk(pt.walk_path(VA))
    assert pwc.probe(VA) == 2


def test_large_page_walk_is_three_steps():
    walker, _, _ = make_walker()
    pt = RadixPageTable()
    base = VA & ~((1 << 21) - 1)
    pt.map_page(base, frame=512 * 4, leaf_level=2)
    outcome = walker.walk(pt.walk_path(base))
    assert len(outcome.records) == 3
    assert outcome.latency == 2 + 3 * 191


def test_average_latency_tracking():
    walker, _, _ = make_walker()
    pt = mapped_pt()
    walker.walk(pt.walk_path(VA))
    walker.walk(pt.walk_path(VA))
    assert walker.walks == 2
    assert walker.average_latency == pytest.approx(
        (2 + 4 * 191 + 2 + 4) / 2
    )


def test_fault_detection_walk():
    walker, _, _ = make_walker()
    pt = mapped_pt()
    fault = pt.fault_path(VA + 4096)  # sibling page, empty PTE slot
    outcome = walker.walk_to_fault(fault)
    assert outcome.faulted
    # All four entries are readable (the PTE reads as not-present).
    assert len(outcome.records) == 4


def test_fault_detection_accelerated_by_prefetch():
    walker, hierarchy, _ = make_walker()
    pt = mapped_pt()
    fault = pt.fault_path(VA + 4096)
    baseline = walker.walk_to_fault(fault).latency
    hierarchy.flush()
    walker.pwc.flush()
    completion = hierarchy.prefetch_line(fault.resolved_steps[-1].line, 0)
    accelerated = walker.walk_to_fault(fault, 0, {1: completion}).latency
    assert accelerated < baseline
