"""Unit tests for the MSHR file."""

import pytest

from repro.mem.mshr import MshrFile


def test_allocate_until_full():
    mshrs = MshrFile(2)
    assert mshrs.try_allocate(1, now=0, completion=100)
    assert mshrs.try_allocate(2, now=0, completion=100)
    assert not mshrs.try_allocate(3, now=0, completion=100)
    assert mshrs.rejections == 1


def test_same_line_merges_instead_of_allocating():
    mshrs = MshrFile(1)
    assert mshrs.try_allocate(1, now=0, completion=100)
    assert mshrs.try_allocate(1, now=10, completion=100)
    assert mshrs.merges == 1
    assert mshrs.occupancy == 1


def test_entries_retire_by_completion_time():
    mshrs = MshrFile(1)
    mshrs.try_allocate(1, now=0, completion=50)
    assert not mshrs.try_allocate(2, now=49, completion=100)
    assert mshrs.try_allocate(2, now=50, completion=100)


def test_inflight_completion_lookup():
    mshrs = MshrFile(2)
    mshrs.try_allocate(1, now=0, completion=77)
    assert mshrs.inflight_completion(1, now=10) == 77
    assert mshrs.inflight_completion(2, now=10) is None
    # After completion the entry is gone.
    assert mshrs.inflight_completion(1, now=80) is None


def test_reset():
    mshrs = MshrFile(2)
    mshrs.try_allocate(1, now=0, completion=10)
    mshrs.reset()
    assert mshrs.occupancy == 0
    assert mshrs.allocations == 0


def test_capacity_validation():
    with pytest.raises(ValueError):
        MshrFile(0)
