"""Unit tests for simulation statistics."""

import pytest

from repro.sim.stats import ServiceDistribution, SimStats


class TestServiceDistribution:
    def test_record_and_fractions(self):
        dist = ServiceDistribution()
        dist.record(1, "MEM")
        dist.record(1, "MEM")
        dist.record(1, "MEM")
        dist.record(1, "L1")
        dist.record(2, "PWC")
        assert dist.fractions(1) == {"L1": 0.25, "MEM": 0.75}
        assert dist.fractions(2) == {"PWC": 1.0}
        assert dist.fractions(3) == {}

    def test_record_walk_bulk(self):
        dist = ServiceDistribution()
        dist.record_walk([(4, "PWC"), (3, "PWC"), (2, "L2"), (1, "MEM")])
        assert dist.count(4, "PWC") == 1
        assert dist.total(1) == 1

    def test_string_levels_for_nested_walks(self):
        dist = ServiceDistribution()
        dist.record("g1", "MEM")
        dist.record("h4", "PWC")
        assert "g1" in dist.levels()
        assert dist.fractions("h4") == {"PWC": 1.0}


class TestSimStats:
    def test_zero_division_guards(self):
        stats = SimStats()
        assert stats.avg_walk_latency == 0.0
        assert stats.walk_fraction == 0.0
        assert stats.mpki == 0.0
        assert stats.tlb_miss_ratio == 0.0
        assert stats.l2_tlb_miss_ratio == 0.0

    def test_derived_metrics(self):
        stats = SimStats(accesses=2000, cycles=10_000, walk_cycles=2_500,
                         walks=50, tlb_l2_hits=150)
        assert stats.avg_walk_latency == 50.0
        assert stats.walk_fraction == 0.25
        assert stats.mpki == 25.0
        assert stats.l2_tlb_miss_ratio == pytest.approx(0.25)

    def test_summary_is_readable(self):
        stats = SimStats(accesses=10, cycles=100, walk_cycles=40, walks=2)
        text = stats.summary()
        assert "walks=2" in text
        assert "40.0%" in text
